//! Crosspoint-queued (CQ) switch arbitration (CQ switch tech report).
//!
//! A CQ switch buffers flits *at the crosspoints*: each `(input, output)`
//! pair owns a small dedicated queue, and every output independently
//! serves its longest crosspoint queue.  There is no input-side
//! head-of-line blocking by construction — a blocked output never stalls
//! traffic headed elsewhere — and the per-output decision is local, which
//! is what makes the architecture attractive in hardware.
//!
//! The MMR pipeline hands arbiters *candidate vectors*, not buffer
//! occupancies, so this kernel models the crosspoint queues virtually:
//! a crosspoint that keeps requesting without being served accumulates
//! **pressure** (one unit per arbitration cycle, saturating at a
//! configurable cap — the crosspoint buffer depth), a crosspoint that
//! stops requesting or gets served drains to zero.  Each output then
//! grants its highest-pressure free requester — per-output
//! longest-queue-first — with uniform reservoir tie-breaks over equal
//! pressure, deliberately ignoring link-scheduler priority: CQ is the
//! architectural contrast to the paper's priority-driven arbiters.
//!
//! The optimized kernel ages pressure incrementally from the previous
//! cycle's request mask (only changed crosspoints are touched); the
//! golden transcription ([`crate::reference::ReferenceCq`]) rescans the
//! dense matrix each cycle.  Differential tests pin them grant-for-grant
//! with RNG-stream identity.

use crate::candidate::{CandidateSet, MAX_PORTS};
use crate::matching::{Grant, Matching};
use crate::portset::{words_for_ports, PortSet};
use crate::scheduler::{KernelProbe, KernelStats, SwitchScheduler};
use mmr_sim::rng::SimRng;

/// Default crosspoint-buffer depth (pressure saturation cap) used by
/// [`crate::scheduler::ArbiterKind::all`].
pub const DEFAULT_CAP: u32 = 16;

/// Crosspoint-queued arbiter: virtual per-crosspoint queues with
/// per-output longest-queue-first selection.
#[derive(Debug, Clone)]
pub struct CrosspointQueuedArbiter {
    ports: usize,
    words: usize,
    cap: u32,
    /// Virtual queue pressure per crosspoint `input * ports + output`.
    depth: Vec<u32>,
    /// Previous cycle's request mask, `words` words per input; pressure
    /// is non-zero only at set bits, so aging touches changed
    /// crosspoints instead of the dense matrix.
    prev_mask: Vec<u64>,
    probe: KernelProbe,
}

impl CrosspointQueuedArbiter {
    /// CQ arbiter for `ports` ports with crosspoint buffers `cap` deep.
    pub fn new(ports: usize, cap: u32) -> Self {
        assert!(
            ports > 0 && ports <= MAX_PORTS,
            "ports must be in 1..={MAX_PORTS}"
        );
        assert!(cap > 0, "crosspoint buffer depth must be positive");
        let words = words_for_ports(ports);
        CrosspointQueuedArbiter {
            ports,
            words,
            cap,
            depth: vec![0; ports * ports],
            prev_mask: vec![0; ports * words],
            probe: KernelProbe::default(),
        }
    }

    /// The pressure saturation cap (crosspoint buffer depth).
    pub fn cap(&self) -> u32 {
        self.cap
    }

    fn run<const W: usize>(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        let n = self.ports;
        out.clear();
        // Phase 1 — age the virtual queues.  Requested crosspoints gain
        // one unit of pressure (saturating at the cap); crosspoints that
        // went silent since last cycle drain to zero.  Untouched bits
        // are zero by the `prev_mask` invariant.
        for input in 0..n {
            let cur = PortSet::<W>::from_words(cs.output_mask(input));
            for w in 0..W {
                let stale = self.prev_mask[input * W + w] & !cur.word(w);
                let mut m = stale;
                while m != 0 {
                    let output = w * 64 + m.trailing_zeros() as usize;
                    m &= m - 1;
                    self.depth[input * n + output] = 0;
                }
                self.prev_mask[input * W + w] = cur.word(w);
            }
            let mut m = cur;
            while let Some(output) = m.take_lowest() {
                let d = &mut self.depth[input * n + output];
                *d = (*d + 1).min(self.cap);
            }
        }
        // Phase 2 — per-output longest-queue-first over free inputs.
        let mut free_in = PortSet::<W>::full(n);
        let mut examined = 0u64;
        for output in 0..n {
            let pool = PortSet::<W>::from_words(cs.requesters(output)).and(&free_in);
            if pool.is_empty() {
                continue;
            }
            let mut best_input = usize::MAX;
            let mut best_depth = 0u32;
            let mut ties = 0u64;
            let mut m = pool;
            while let Some(input) = m.take_lowest() {
                examined += 1;
                let d = self.depth[input * n + output];
                if best_input == usize::MAX || d > best_depth {
                    best_input = input;
                    best_depth = d;
                    ties = 1;
                } else if d == best_depth {
                    ties += 1;
                    if rng.below(ties) == 0 {
                        best_input = input;
                    }
                }
            }
            let (level, c) = cs
                .best_level_for(best_input, output)
                .expect("pool member has a candidate");
            out.add(Grant {
                input: best_input,
                output,
                vc: c.vc,
                level,
            });
            free_in.remove(best_input);
            self.depth[best_input * n + output] = 0;
        }
        self.probe.iterations(1);
        self.probe.examined(examined);
        self.probe.matched(out.size() as u64);
        debug_assert!(out.is_consistent_with(cs));
    }
}

impl SwitchScheduler for CrosspointQueuedArbiter {
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        assert_eq!(cs.ports(), self.ports);
        match self.words {
            1 => self.run::<1>(cs, rng, out),
            2 => self.run::<2>(cs, rng, out),
            _ => self.run::<4>(cs, rng, out),
        }
    }

    fn name(&self) -> &'static str {
        "CQ"
    }

    fn reset(&mut self) {
        self.depth.fill(0);
        self.prev_mask.fill(0);
    }

    fn set_probe_enabled(&mut self, enabled: bool) {
        self.probe.set_enabled(enabled);
    }

    fn kernel_stats(&self) -> KernelStats {
        self.probe.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{Candidate, Priority};

    fn cand(input: usize, vc: usize, output: usize, p: f64) -> Candidate {
        Candidate {
            input,
            vc,
            output,
            priority: Priority::new(p),
        }
    }

    fn rng() -> SimRng {
        SimRng::seed_from_u64(11)
    }

    #[test]
    fn starved_crosspoint_builds_pressure_and_wins() {
        // Input 0 outranks input 1 in priority, but CQ ignores priority:
        // after input 0 is served its queue drains to zero while input
        // 1's pressure has grown, so service alternates.
        let mut arb = CrosspointQueuedArbiter::new(4, DEFAULT_CAP);
        let mut cs = CandidateSet::new(4, 2);
        cs.set_input(0, &[cand(0, 0, 0, 100.0)]);
        cs.set_input(1, &[cand(1, 0, 0, 1.0)]);
        let mut r = rng();
        let first = arb.schedule(&cs, &mut r).grants().next().unwrap().input;
        let mut wins = [0u32; 2];
        for _ in 0..10 {
            let m = arb.schedule(&cs, &mut r);
            assert_eq!(m.size(), 1);
            wins[m.grants().next().unwrap().input] += 1;
        }
        // Whoever won the (tied, random) first cycle, the loser's queue
        // is strictly longer afterwards, so the next 10 cycles alternate.
        assert_eq!(wins, [5, 5], "first winner {first}");
    }

    #[test]
    fn silent_crosspoint_drains_to_zero() {
        let mut arb = CrosspointQueuedArbiter::new(4, DEFAULT_CAP);
        let mut r = rng();
        // Input 1 builds pressure on output 0 while input 0 is served…
        let mut contended = CandidateSet::new(4, 2);
        contended.set_input(0, &[cand(0, 0, 0, 1.0)]);
        contended.set_input(1, &[cand(1, 0, 0, 1.0)]);
        for _ in 0..3 {
            arb.schedule(&contended, &mut r);
        }
        // …then goes silent for a cycle: its queue must drain, so with
        // fresh symmetric requests neither input holds an advantage.
        let mut solo = CandidateSet::new(4, 2);
        solo.set_input(0, &[cand(0, 0, 0, 1.0)]);
        arb.schedule(&solo, &mut r);
        assert_eq!(arb.depth[4], 0, "input 1's queue must have drained");
    }

    #[test]
    fn pressure_saturates_at_the_cap() {
        let cap = 3;
        let mut arb = CrosspointQueuedArbiter::new(4, cap);
        let mut cs = CandidateSet::new(4, 2);
        cs.set_input(0, &[cand(0, 0, 0, 1.0)]);
        cs.set_input(1, &[cand(1, 0, 1, 1.0)]);
        let mut r = rng();
        for _ in 0..10 {
            arb.schedule(&cs, &mut r);
        }
        // Input 1 → output 1 is served every cycle (no contention), so
        // its queue never exceeds 1; the cap applies to, e.g., a
        // crosspoint requesting but never served — simulate via depth
        // inspection of the served crosspoints instead: both reset to 0
        // after each grant, and no entry may exceed the cap.
        assert!(arb.depth.iter().all(|&d| d <= cap));
    }

    #[test]
    fn permutation_fully_matched_at_multi_word_widths() {
        for ports in [100usize, 256] {
            let mut cs = CandidateSet::new(ports, 1);
            for i in 0..ports {
                cs.push(cand(i, 0, (i + 5) % ports, 1.0));
            }
            let m = CrosspointQueuedArbiter::new(ports, DEFAULT_CAP).schedule(&cs, &mut rng());
            assert_eq!(m.size(), ports, "ports = {ports}");
        }
    }

    #[test]
    fn reset_clears_pressure_and_masks() {
        let mut arb = CrosspointQueuedArbiter::new(4, DEFAULT_CAP);
        let mut cs = CandidateSet::new(4, 1);
        cs.push(cand(0, 0, 0, 1.0));
        cs.push(cand(1, 0, 0, 1.0));
        arb.schedule(&cs, &mut rng());
        assert!(arb.depth.iter().any(|&d| d > 0) || arb.prev_mask.iter().any(|&m| m != 0));
        arb.reset();
        assert!(arb.depth.iter().all(|&d| d == 0));
        assert!(arb.prev_mask.iter().all(|&m| m == 0));
    }
}
