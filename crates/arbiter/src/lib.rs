//! # mmr-arbiter — link- and switch-scheduling algorithms for the MMR
//!
//! The MMR splits resource scheduling into three decisions (paper §3):
//! **candidate selection** (link scheduling), **port ordering** and
//! **arbitration** (switch scheduling).  This crate implements both halves:
//!
//! * [`priority`] — the biased-priority functions that drive candidate
//!   selection: **SIABP** (the hardware-friendly shift-based function of
//!   §3.1), **IABP** (the division-based original), plus FIFO and static
//!   baselines.
//! * [`candidate`] — the candidate vectors each input link produces: up to
//!   *k* (output port, priority) pairs ordered by priority.
//! * [`portset`] — multi-word port bitsets (`PortSet<W>`, W ∈ {1, 2, 4})
//!   backing every kernel's requester/free-port masks; routers up to 256
//!   ports run the same branch-free kernels as the paper's 4×4 MMR.
//! * [`coa`] — the **Candidate-Order Arbiter**, the paper's contribution
//!   (§4): selection matrix → conflict vector → port ordering (level first,
//!   then ascending conflict, random ties) → highest-priority arbitration,
//!   iterated with recomputation after every match.
//! * [`wfa`] — the **Wave Front Arbiter** (Tamir & Chi), the paper's
//!   comparison baseline, in its wrapped form with a rotating priority
//!   diagonal.
//! * [`islip`], [`pim`], [`greedy`], [`random`] — the related-work
//!   baselines §4 cites (iSLIP, Parallel Iterative Matching, greedy
//!   priority matching, random maximal matching).
//! * [`mwm`] — the **maximum-weight matching oracle** (exact Hungarian at
//!   small ports, greedy ½-approximation beyond): the optimality frontier
//!   the paper never measured COA against.
//! * [`frame`], [`cq`] — beyond-the-paper architectural contrasts: a
//!   frame-based fair scheduler (NoC fairness literature) and a
//!   crosspoint-queued switch model (per-crosspoint buffers with
//!   per-output longest-queue-first selection).
//! * [`reference`] — golden, unoptimized transcriptions of every arbiter;
//!   the bitmask kernels above are pinned to them grant-for-grant by
//!   differential property tests.
//! * [`hw`] — an analytic hardware-cost model covering the paper's §6
//!   future work: gate-count and delay estimates for the priority functions
//!   and arbiters.
//!
//! All schedulers implement [`SwitchScheduler`] and can be swapped freely
//! in the router; every scheduler produces *conflict-free* matchings (at
//! most one grant per input and per output), a property the test suite
//! checks exhaustively and property-based tests re-check on random inputs.

#![warn(missing_docs)]

pub mod candidate;
pub mod coa;
pub mod cq;
pub mod frame;
pub mod greedy;
pub mod hw;
pub mod islip;
pub mod matching;
pub mod mwm;
pub mod pim;
pub mod portset;
pub mod priority;
pub mod random;
pub mod reference;
pub mod scheduler;
pub mod wfa;

pub use candidate::{Candidate, CandidateSet, Priority};
pub use coa::CandidateOrderArbiter;
pub use cq::CrosspointQueuedArbiter;
pub use frame::FrameFairArbiter;
pub use greedy::GreedyPriorityArbiter;
pub use islip::IslipArbiter;
pub use matching::{Grant, Matching};
pub use mwm::MwmArbiter;
pub use pim::PimArbiter;
pub use portset::{words_for_ports, PortSet, PortSet128, PortSet256, PortSet64};
pub use priority::{Fifo, Iabp, LinkPriority, PriorityKind, Siabp, StaticPriority};
pub use random::RandomArbiter;
pub use scheduler::{ArbiterKind, KernelProbe, KernelStats, SwitchScheduler};
pub use wfa::WaveFrontArbiter;
