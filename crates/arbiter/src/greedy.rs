//! Greedy global-priority matching.
//!
//! An ablation baseline isolating COA's *port ordering*: like COA it
//! serves high-priority candidates first, but it simply sorts all
//! candidates by priority and takes them greedily — no conflict vector, no
//! most-conflicted-last ordering, no level precedence.
//!
//! ## Kernel
//!
//! The sort key is a single `u128`: the high 64 bits are the candidate's
//! priority mapped through the order-preserving integer transform
//! [`crate::candidate::Priority::sort_key`] (bitwise-inverted so ascending
//! key order is descending priority), the low 64 bits one RNG draw that breaks
//! equal-priority ties fairly.  One integer compare replaces the old
//! indirect `total_cmp`-then-jitter comparator, and the grant pass walks
//! multi-word free-port sets ([`crate::portset::PortSet`]) with an early
//! exit once either side is exhausted.  The sort payload packs the
//! candidate's `(input, level)` coordinates rather than a copy of the
//! candidate itself, so the sorted elements stay 32 bytes and the grant
//! pass reads candidates in place via
//! [`crate::candidate::CandidateSet::candidate_at`].  The RNG draws (one
//! per candidate, in enumeration order) and the resulting matching are
//! bit-identical to the golden reference
//! ([`crate::reference::ReferenceGreedy`]); the differential tests pin
//! both.
//!
//! All per-cycle buffers (sort keys, free-port bitmasks) are struct
//! scratch, so steady-state scheduling allocates nothing.

use crate::candidate::{CandidateSet, MAX_PORTS};
use crate::matching::{Grant, Matching};
use crate::portset::{words_for_ports, PortSet};
use crate::scheduler::{KernelProbe, KernelStats, SwitchScheduler};
use mmr_sim::rng::SimRng;

/// Greedy matching in descending global priority order.
#[derive(Debug, Clone)]
pub struct GreedyPriorityArbiter {
    ports: usize,
    words: usize,
    keyed: Vec<(u128, u32)>,
    probe: KernelProbe,
}

impl GreedyPriorityArbiter {
    /// Greedy arbiter for `ports` ports.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0 && ports <= MAX_PORTS);
        GreedyPriorityArbiter {
            ports,
            words: words_for_ports(ports),
            keyed: Vec::new(),
            probe: KernelProbe::default(),
        }
    }

    fn run<const W: usize>(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        out.clear();
        let levels = cs.levels();
        debug_assert!(levels < 1 << 16, "level index must fit the packed key");
        // Pack (descending priority, random jitter) into one integer key:
        // the jitter draw order — one `next_u64_raw` per candidate, in
        // enumeration order — is part of the reference contract.  The
        // payload packs (input, level) instead of copying the 40-byte
        // candidate; it is strictly increasing in enumeration order, so
        // full-key ties resolve exactly like the reference's stable sort.
        let keyed = &mut self.keyed;
        keyed.clear();
        for input in 0..self.ports {
            for level in 0..levels {
                // Candidate vectors are level-prefixes: the first gap ends
                // this input's list.
                let Some(c) = cs.candidate_at(input, level) else {
                    break;
                };
                let key =
                    (u128::from(!c.priority.sort_key()) << 64) | u128::from(rng.next_u64_raw());
                keyed.push((key, ((input << 16) | level) as u32));
            }
        }
        keyed.sort_unstable();

        let mut free_in = PortSet::<W>::full(self.ports);
        let mut free_out = PortSet::<W>::full(self.ports);
        for &(_, packed) in self.keyed.iter() {
            if free_in.is_empty() || free_out.is_empty() {
                break;
            }
            let input = (packed >> 16) as usize;
            if !free_in.contains(input) {
                continue;
            }
            let level = (packed & 0xFFFF) as usize;
            let c = cs.candidate_at(input, level).expect("packed candidate");
            if free_out.contains(c.output) {
                out.add(Grant {
                    input,
                    output: c.output,
                    vc: c.vc,
                    level,
                });
                free_in.remove(input);
                free_out.remove(c.output);
            }
        }
        // One sorted pass over every candidate: examined = list length,
        // and a single "iteration" per call.
        self.probe.iterations(1);
        self.probe.examined(self.keyed.len() as u64);
        self.probe.matched(out.size() as u64);
        debug_assert!(out.is_consistent_with(cs));
    }
}

impl SwitchScheduler for GreedyPriorityArbiter {
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        assert_eq!(cs.ports(), self.ports);
        match self.words {
            1 => self.run::<1>(cs, rng, out),
            2 => self.run::<2>(cs, rng, out),
            _ => self.run::<4>(cs, rng, out),
        }
    }

    fn name(&self) -> &'static str {
        "Greedy priority"
    }

    fn set_probe_enabled(&mut self, enabled: bool) {
        self.probe.set_enabled(enabled);
    }

    fn kernel_stats(&self) -> KernelStats {
        self.probe.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{Candidate, Priority};

    fn cand(input: usize, vc: usize, output: usize, prio: f64) -> Candidate {
        Candidate {
            input,
            vc,
            output,
            priority: Priority::new(prio),
        }
    }

    fn rng() -> SimRng {
        SimRng::seed_from_u64(0)
    }

    #[test]
    fn highest_priority_always_served() {
        let mut cs = CandidateSet::new(4, 1);
        cs.push(cand(0, 0, 1, 10.0));
        cs.push(cand(1, 0, 1, 999.0));
        cs.push(cand(2, 0, 1, 50.0));
        let m = GreedyPriorityArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 1);
        assert!(m.grant_for(1).is_some());
    }

    #[test]
    fn greedy_can_be_suboptimal_in_cardinality() {
        // Priorities: (0 -> 1, 100) beats both (1 -> 1, 50) and
        // (1 -> 0, 40).  Greedy takes (0 -> 1) then (1 -> 0): size 2 here.
        // But if input 1 only had output 1, greedy's size would drop to 1
        // while a cardinality-aware matcher could... also only get 1.
        // The real check: greedy never violates conflict-freedom and picks
        // strictly by priority order.
        let mut cs = CandidateSet::new(2, 2);
        cs.set_input(0, &[cand(0, 0, 1, 100.0)]);
        cs.set_input(1, &[cand(1, 0, 1, 50.0), cand(1, 1, 0, 40.0)]);
        let m = GreedyPriorityArbiter::new(2).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 2);
        assert_eq!(m.grant_for(0).unwrap().output, 1);
        assert_eq!(m.grant_for(1).unwrap().output, 0);
    }

    #[test]
    fn equal_priorities_fair_over_time() {
        let mut cs = CandidateSet::new(2, 1);
        cs.push(cand(0, 0, 0, 7.0));
        cs.push(cand(1, 0, 0, 7.0));
        let mut arb = GreedyPriorityArbiter::new(2);
        let mut r = SimRng::seed_from_u64(11);
        let wins0 = (0..1000)
            .filter(|_| arb.schedule(&cs, &mut r).grant_for(0).is_some())
            .count();
        assert!((400..600).contains(&wins0), "wins0 = {wins0}");
    }
}
