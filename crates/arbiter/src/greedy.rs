//! Greedy global-priority matching.
//!
//! An ablation baseline isolating COA's *port ordering*: like COA it
//! serves high-priority candidates first, but it simply sorts all
//! candidates by priority and takes them greedily — no conflict vector, no
//! most-conflicted-last ordering, no level precedence.
//!
//! All per-cycle buffers (candidate list, sort keys, free-port bitmasks)
//! are struct scratch, so steady-state scheduling allocates nothing.

use crate::candidate::{Candidate, CandidateSet};
use crate::matching::{Grant, Matching};
use crate::scheduler::{KernelProbe, KernelStats, SwitchScheduler};
use mmr_sim::rng::SimRng;

/// Greedy matching in descending global priority order.
#[derive(Debug, Clone)]
pub struct GreedyPriorityArbiter {
    ports: usize,
    scratch: Vec<(Candidate, usize)>,
    keyed: Vec<(u64, usize)>,
    probe: KernelProbe,
}

impl GreedyPriorityArbiter {
    /// Greedy arbiter for `ports` ports.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0);
        GreedyPriorityArbiter {
            ports,
            scratch: Vec::new(),
            keyed: Vec::new(),
            probe: KernelProbe::default(),
        }
    }
}

impl SwitchScheduler for GreedyPriorityArbiter {
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        assert_eq!(cs.ports(), self.ports);
        out.clear();
        self.scratch.clear();
        for input in 0..self.ports {
            for (level, c) in cs.input_candidates(input).enumerate() {
                self.scratch.push((c, level));
            }
        }
        // Random jitter for equal-priority candidates keeps the tie-break
        // fair, then a stable sort by descending priority.
        let GreedyPriorityArbiter { scratch, keyed, .. } = self;
        keyed.clear();
        keyed.extend(
            scratch
                .iter()
                .enumerate()
                .map(|(i, _)| (rng.next_u64_raw(), i)),
        );
        keyed.sort_unstable_by(|a, b| {
            let pa = scratch[a.1].0.priority;
            let pb = scratch[b.1].0.priority;
            pb.cmp(&pa).then(a.0.cmp(&b.0))
        });

        let mut free_in: u64 = if self.ports == 64 {
            u64::MAX
        } else {
            (1u64 << self.ports) - 1
        };
        let mut free_out = free_in;
        for &(_, idx) in self.keyed.iter() {
            let (c, level) = self.scratch[idx];
            if free_in & (1u64 << c.input) != 0 && free_out & (1u64 << c.output) != 0 {
                out.add(Grant {
                    input: c.input,
                    output: c.output,
                    vc: c.vc,
                    level,
                });
                free_in &= !(1u64 << c.input);
                free_out &= !(1u64 << c.output);
            }
        }
        // One sorted pass over every candidate: examined = list length,
        // and a single "iteration" per call.
        self.probe.iterations(1);
        self.probe.examined(self.scratch.len() as u64);
        self.probe.matched(out.size() as u64);
        debug_assert!(out.is_consistent_with(cs));
    }

    fn name(&self) -> &'static str {
        "Greedy priority"
    }

    fn set_probe_enabled(&mut self, enabled: bool) {
        self.probe.set_enabled(enabled);
    }

    fn kernel_stats(&self) -> KernelStats {
        self.probe.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::Priority;

    fn cand(input: usize, vc: usize, output: usize, prio: f64) -> Candidate {
        Candidate {
            input,
            vc,
            output,
            priority: Priority::new(prio),
        }
    }

    fn rng() -> SimRng {
        SimRng::seed_from_u64(0)
    }

    #[test]
    fn highest_priority_always_served() {
        let mut cs = CandidateSet::new(4, 1);
        cs.push(cand(0, 0, 1, 10.0));
        cs.push(cand(1, 0, 1, 999.0));
        cs.push(cand(2, 0, 1, 50.0));
        let m = GreedyPriorityArbiter::new(4).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 1);
        assert!(m.grant_for(1).is_some());
    }

    #[test]
    fn greedy_can_be_suboptimal_in_cardinality() {
        // Priorities: (0 -> 1, 100) beats both (1 -> 1, 50) and
        // (1 -> 0, 40).  Greedy takes (0 -> 1) then (1 -> 0): size 2 here.
        // But if input 1 only had output 1, greedy's size would drop to 1
        // while a cardinality-aware matcher could... also only get 1.
        // The real check: greedy never violates conflict-freedom and picks
        // strictly by priority order.
        let mut cs = CandidateSet::new(2, 2);
        cs.set_input(0, &[cand(0, 0, 1, 100.0)]);
        cs.set_input(1, &[cand(1, 0, 1, 50.0), cand(1, 1, 0, 40.0)]);
        let m = GreedyPriorityArbiter::new(2).schedule(&cs, &mut rng());
        assert_eq!(m.size(), 2);
        assert_eq!(m.grant_for(0).unwrap().output, 1);
        assert_eq!(m.grant_for(1).unwrap().output, 0);
    }

    #[test]
    fn equal_priorities_fair_over_time() {
        let mut cs = CandidateSet::new(2, 1);
        cs.push(cand(0, 0, 0, 7.0));
        cs.push(cand(1, 0, 0, 7.0));
        let mut arb = GreedyPriorityArbiter::new(2);
        let mut r = SimRng::seed_from_u64(11);
        let wins0 = (0..1000)
            .filter(|_| arb.schedule(&cs, &mut r).grant_for(0).is_some())
            .count();
        assert!((400..600).contains(&wins0), "wins0 = {wins0}");
    }
}
