//! Frame-based fair switch scheduling (NoC fairness literature).
//!
//! The NoC fair-packet-scheduling line of work divides time into fixed
//! **frames** and gives every flow a grant quota per frame, so a heavy
//! flow cannot monopolize an output while lighter flows hold unused
//! quota.  Mapped onto the MMR's crossbar arbitration, the flow unit is
//! the **crosspoint** `(input, output)`:
//!
//! * Every crosspoint may consume up to `quota = max(1, frame / ports)`
//!   grants per frame.
//! * Each cycle, every free output considers its requesters; while *any*
//!   requester still holds quota, over-quota requesters are ineligible.
//!   If every requester has spent its quota the full set competes again —
//!   the scheduler stays work-conserving.
//! * Among the eligible pool the highest-priority best-level candidate
//!   wins; equal priorities are broken uniformly at random with the same
//!   reservoir idiom COA uses, so the RNG-draw sequence is deterministic
//!   and mirrored exactly by [`crate::reference::ReferenceFrameFair`].
//!
//! The frame clock counts *arbitration* cycles: the router only invokes
//! the scheduler on non-empty candidate sets, so idle cycles do not age
//! the frame and the event-horizon engine stays bit-identical to the
//! cycle-by-cycle loop (pinned by `tests/determinism.rs`).

use crate::candidate::{Candidate, CandidateSet, MAX_PORTS};
use crate::matching::{Grant, Matching};
use crate::portset::{words_for_ports, PortSet};
use crate::scheduler::{KernelProbe, KernelStats, SwitchScheduler};
use mmr_sim::rng::SimRng;

/// Default frame length (arbitration cycles) used by
/// [`crate::scheduler::ArbiterKind::all`].
pub const DEFAULT_FRAME: u32 = 64;

/// Frame-based fair arbiter with per-crosspoint grant quotas.
#[derive(Debug, Clone)]
pub struct FrameFairArbiter {
    ports: usize,
    words: usize,
    frame: u32,
    quota: u32,
    cycle_in_frame: u32,
    /// Grants consumed this frame, per crosspoint
    /// `input * ports + output`.
    used: Vec<u32>,
    probe: KernelProbe,
}

impl FrameFairArbiter {
    /// Frame-fair arbiter for `ports` ports and a `frame`-cycle frame.
    pub fn new(ports: usize, frame: u32) -> Self {
        assert!(
            ports > 0 && ports <= MAX_PORTS,
            "ports must be in 1..={MAX_PORTS}"
        );
        assert!(frame > 0, "frame length must be positive");
        FrameFairArbiter {
            ports,
            words: words_for_ports(ports),
            frame,
            quota: (frame / ports as u32).max(1),
            cycle_in_frame: 0,
            used: vec![0; ports * ports],
            probe: KernelProbe::default(),
        }
    }

    /// The per-crosspoint grant quota for one frame.
    pub fn quota(&self) -> u32 {
        self.quota
    }

    fn run<const W: usize>(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        let n = self.ports;
        out.clear();
        let mut free_in = PortSet::<W>::full(n);
        let mut examined = 0u64;
        for output in 0..n {
            let requesters = PortSet::<W>::from_words(cs.requesters(output)).and(&free_in);
            if requesters.is_empty() {
                continue;
            }
            // Pass 1 (no RNG): does any requester still hold quota?
            let mut any_eligible = false;
            let mut m = requesters;
            while let Some(input) = m.take_lowest() {
                any_eligible |= self.used[input * n + output] < self.quota;
            }
            // Pass 2: highest-priority candidate in the eligible pool
            // (everyone, when all quotas are spent).  Reservoir ties.
            let mut best: Option<(usize, usize, Candidate)> = None;
            let mut best_key = 0u64;
            let mut ties = 0u64;
            let mut m = requesters;
            while let Some(input) = m.take_lowest() {
                if any_eligible && self.used[input * n + output] >= self.quota {
                    continue;
                }
                examined += 1;
                let (level, c) = cs
                    .best_level_for(input, output)
                    .expect("requester has a candidate");
                let key = c.priority.sort_key();
                if best.is_none() || key > best_key {
                    best = Some((input, level, c));
                    best_key = key;
                    ties = 1;
                } else if key == best_key {
                    ties += 1;
                    if rng.below(ties) == 0 {
                        best = Some((input, level, c));
                    }
                }
            }
            let (input, level, c) = best.expect("eligible pool is non-empty");
            out.add(Grant {
                input,
                output,
                vc: c.vc,
                level,
            });
            free_in.remove(input);
            self.used[input * n + output] += 1;
        }
        // Advance the frame clock once per arbitration cycle.
        self.cycle_in_frame += 1;
        if self.cycle_in_frame == self.frame {
            self.cycle_in_frame = 0;
            self.used.fill(0);
        }
        self.probe.iterations(1);
        self.probe.examined(examined);
        self.probe.matched(out.size() as u64);
        debug_assert!(out.is_consistent_with(cs));
    }
}

impl SwitchScheduler for FrameFairArbiter {
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        assert_eq!(cs.ports(), self.ports);
        match self.words {
            1 => self.run::<1>(cs, rng, out),
            2 => self.run::<2>(cs, rng, out),
            _ => self.run::<4>(cs, rng, out),
        }
    }

    fn name(&self) -> &'static str {
        "Frame-fair"
    }

    fn reset(&mut self) {
        self.cycle_in_frame = 0;
        self.used.fill(0);
    }

    fn set_probe_enabled(&mut self, enabled: bool) {
        self.probe.set_enabled(enabled);
    }

    fn kernel_stats(&self) -> KernelStats {
        self.probe.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::Priority;

    fn cand(input: usize, vc: usize, output: usize, p: f64) -> Candidate {
        Candidate {
            input,
            vc,
            output,
            priority: Priority::new(p),
        }
    }

    fn rng() -> SimRng {
        SimRng::seed_from_u64(3)
    }

    #[test]
    fn quota_throttles_a_heavy_crosspoint() {
        // Inputs 0 and 1 both requesting output 0; input 0 always holds
        // the higher priority.  A priority-only arbiter starves input 1
        // forever; frame-fair must hand it one grant per frame (its
        // quota), with the work-conserving fallback giving the surplus
        // back to the heavy crosspoint.
        let ports = 4;
        let frame = 4; // quota = 1 per crosspoint
        let mut arb = FrameFairArbiter::new(ports, frame);
        assert_eq!(arb.quota(), 1);
        let mut cs = CandidateSet::new(ports, 2);
        cs.set_input(0, &[cand(0, 0, 0, 100.0)]);
        cs.set_input(1, &[cand(1, 0, 0, 1.0)]);
        let mut r = rng();
        let mut wins = [0u32; 2];
        for _ in 0..16 {
            let m = arb.schedule(&cs, &mut r);
            assert_eq!(m.size(), 1);
            let g = m.grants().next().unwrap();
            wins[g.input] += 1;
        }
        // 4 frames × (1 quota grant for input 1 + 3 for input 0: its own
        // quota plus the over-quota surplus its priority wins back).
        assert_eq!(wins, [12, 4], "input 1 must get its quota every frame");
    }

    #[test]
    fn work_conserving_when_all_quotas_are_spent() {
        // One crosspoint, quota 1: after the first grant in a frame the
        // crosspoint is over quota, but with no eligible rival it must
        // still be served every cycle.
        let mut arb = FrameFairArbiter::new(4, 4);
        let mut cs = CandidateSet::new(4, 1);
        cs.push(cand(0, 0, 0, 5.0));
        let mut r = rng();
        for cycle in 0..10 {
            let m = arb.schedule(&cs, &mut r);
            assert_eq!(m.size(), 1, "cycle {cycle} must still grant");
        }
    }

    #[test]
    fn permutation_fully_matched_at_multi_word_widths() {
        for ports in [100usize, 256] {
            let mut cs = CandidateSet::new(ports, 1);
            for i in 0..ports {
                cs.push(cand(i, 0, (i + 3) % ports, 1.0));
            }
            let m = FrameFairArbiter::new(ports, DEFAULT_FRAME).schedule(&cs, &mut rng());
            assert_eq!(m.size(), ports, "ports = {ports}");
        }
    }

    #[test]
    fn reset_clears_frame_state() {
        let mut arb = FrameFairArbiter::new(4, 4);
        let mut cs = CandidateSet::new(4, 1);
        cs.push(cand(0, 0, 0, 5.0));
        arb.schedule(&cs, &mut rng());
        assert_ne!(arb.used[0], 0);
        arb.reset();
        assert_eq!(arb.used[0], 0);
        assert_eq!(arb.cycle_in_frame, 0);
    }
}
