//! Parallel Iterative Matching (Anderson et al.) — random iterative
//! matching, cited by the paper (§4, \[1\]) as the scheme WFA beats on
//! hardware cost.
//!
//! Structure mirrors iSLIP, but grant and accept choices are uniformly
//! random instead of round-robin, and no pointer state is kept.
//!
//! ## Kernel
//!
//! Requester and grant sets are `u64` bitmasks; "pick a uniform random
//! requester" is one RNG draw over the popcount followed by a k-th-set-bit
//! select, with no materialized index list.  Bits enumerate in ascending
//! port order — the same order the golden reference
//! ([`crate::reference::ReferencePim`]) builds its lists in — so both
//! consume the RNG stream identically and match grant for grant.

use crate::candidate::CandidateSet;
use crate::matching::{Grant, Matching};
use crate::scheduler::{KernelProbe, KernelStats, SwitchScheduler};
use mmr_sim::rng::SimRng;

/// Index of the `k`-th set bit of `mask` (0-based, from the bottom).
/// `k` must be less than `mask.count_ones()`.
#[inline]
pub(crate) fn kth_set_bit(mask: u64, k: usize) -> usize {
    debug_assert!((k as u32) < mask.count_ones());
    let mut m = mask;
    for _ in 0..k {
        m &= m - 1;
    }
    m.trailing_zeros() as usize
}

/// PIM with a configurable iteration count.
#[derive(Debug, Clone)]
pub struct PimArbiter {
    ports: usize,
    iterations: usize,
    /// Scratch: per input, bitmask of outputs that granted it this
    /// iteration.
    grants_in: Vec<u64>,
    probe: KernelProbe,
}

impl PimArbiter {
    /// PIM for `ports` ports running `iterations` passes per cycle.
    pub fn new(ports: usize, iterations: usize) -> Self {
        assert!(ports > 0 && iterations > 0);
        PimArbiter {
            ports,
            iterations,
            grants_in: vec![0; ports],
            probe: KernelProbe::default(),
        }
    }
}

impl SwitchScheduler for PimArbiter {
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        let n = self.ports;
        assert_eq!(cs.ports(), n);
        out.clear();
        let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let mut free_in = full;
        let mut free_out = full;
        let mut iters = 0u64;
        let mut examined = 0u64;

        for _ in 0..self.iterations {
            iters += 1;
            // Grant: each free output picks a random requesting free input.
            self.grants_in.fill(0);
            let mut of = free_out;
            while of != 0 {
                let output = of.trailing_zeros() as usize;
                of &= of - 1;
                let requesters = cs.requesters(output) & free_in;
                examined += u64::from(requesters.count_ones());
                if requesters != 0 {
                    let input =
                        kth_set_bit(requesters, rng.index(requesters.count_ones() as usize));
                    self.grants_in[input] |= 1u64 << output;
                }
            }
            // Accept: each input picks a random output among its grants.
            let mut any_accept = false;
            let mut inf = free_in;
            while inf != 0 {
                let input = inf.trailing_zeros() as usize;
                inf &= inf - 1;
                let granted = self.grants_in[input];
                if granted == 0 {
                    continue;
                }
                let output = kth_set_bit(granted, rng.index(granted.count_ones() as usize));
                let (level, c) = cs
                    .best_level_for(input, output)
                    .expect("granted request exists");
                out.add(Grant {
                    input,
                    output,
                    vc: c.vc,
                    level,
                });
                free_in &= !(1u64 << input);
                free_out &= !(1u64 << output);
                any_accept = true;
            }
            if !any_accept {
                break;
            }
        }
        self.probe.iterations(iters);
        self.probe.examined(examined);
        self.probe.matched(out.size() as u64);
        debug_assert!(out.is_consistent_with(cs));
    }

    fn name(&self) -> &'static str {
        "Parallel Iterative Matching"
    }

    fn set_probe_enabled(&mut self, enabled: bool) {
        self.probe.set_enabled(enabled);
    }

    fn kernel_stats(&self) -> KernelStats {
        self.probe.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{Candidate, Priority};

    fn cand(input: usize, vc: usize, output: usize) -> Candidate {
        Candidate {
            input,
            vc,
            output,
            priority: Priority::new(1.0),
        }
    }

    #[test]
    fn kth_set_bit_selects() {
        assert_eq!(kth_set_bit(0b1011, 0), 0);
        assert_eq!(kth_set_bit(0b1011, 1), 1);
        assert_eq!(kth_set_bit(0b1011, 2), 3);
        assert_eq!(kth_set_bit(u64::MAX, 63), 63);
    }

    #[test]
    fn permutation_fully_matched() {
        let mut cs = CandidateSet::new(4, 1);
        for i in 0..4 {
            cs.push(cand(i, 0, (i + 1) % 4));
        }
        let mut rng = SimRng::seed_from_u64(1);
        let m = PimArbiter::new(4, 1).schedule(&cs, &mut rng);
        assert_eq!(m.size(), 4);
    }

    #[test]
    fn contention_yields_single_grant() {
        let mut cs = CandidateSet::new(4, 1);
        for i in 0..4 {
            cs.push(cand(i, 0, 2));
        }
        let mut rng = SimRng::seed_from_u64(2);
        let m = PimArbiter::new(4, 3).schedule(&cs, &mut rng);
        assert_eq!(m.size(), 1);
        assert!(m.output_matched(2));
    }

    #[test]
    fn service_is_statistically_fair() {
        // Two inputs fight for one output; over many cycles each should
        // win roughly half the time.
        let mut cs = CandidateSet::new(2, 1);
        cs.push(cand(0, 0, 0));
        cs.push(cand(1, 0, 0));
        let mut pim = PimArbiter::new(2, 1);
        let mut rng = SimRng::seed_from_u64(3);
        let wins0 = (0..2000)
            .filter(|_| pim.schedule(&cs, &mut rng).grant_for(0).is_some())
            .count();
        assert!((800..1200).contains(&wins0), "wins0 = {wins0}");
    }

    #[test]
    fn more_iterations_never_shrink_matching() {
        for seed in 0..20u64 {
            let mut gen = SimRng::seed_from_u64(seed);
            let mut cs = CandidateSet::new(4, 2);
            for input in 0..4 {
                let c1 = cand(input, 0, gen.index(4));
                let mut c2 = cand(input, 1, gen.index(4));
                c2.priority = Priority::new(0.5);
                cs.set_input(input, &[c1, c2]);
            }
            let mut rng_a = SimRng::seed_from_u64(seed + 100);
            let mut rng_b = SimRng::seed_from_u64(seed + 100);
            let one = PimArbiter::new(4, 1).schedule(&cs, &mut rng_a).size();
            let four = PimArbiter::new(4, 4).schedule(&cs, &mut rng_b).size();
            assert!(four >= one, "seed {seed}: {four} < {one}");
        }
    }
}
