//! Parallel Iterative Matching (Anderson et al.) — random iterative
//! matching, cited by the paper (§4, \[1\]) as the scheme WFA beats on
//! hardware cost.
//!
//! Structure mirrors iSLIP, but grant and accept choices are uniformly
//! random instead of round-robin, and no pointer state is kept.
//!
//! ## Kernel
//!
//! Requester and grant sets are [`crate::portset::PortSet`] bitmasks;
//! "pick a uniform random requester" is one RNG draw over the popcount
//! followed by a k-th-set-bit select ([`PortSet::kth_set_bit`]), with no
//! materialized index list.  Bits enumerate in ascending port order — the
//! same order the golden reference ([`crate::reference::ReferencePim`])
//! builds its lists in — so both consume the RNG stream identically and
//! match grant for grant.

use crate::candidate::{CandidateSet, MAX_PORTS};
use crate::matching::{Grant, Matching};
use crate::portset::{words_for_ports, PortSet};
use crate::scheduler::{KernelProbe, KernelStats, SwitchScheduler};
use mmr_sim::rng::SimRng;

/// PIM with a configurable iteration count.
#[derive(Debug, Clone)]
pub struct PimArbiter {
    ports: usize,
    words: usize,
    iterations: usize,
    /// Scratch: per input, `words` words of outputs that granted it this
    /// iteration.
    grants_in: Vec<u64>,
    probe: KernelProbe,
}

impl PimArbiter {
    /// PIM for `ports` ports running `iterations` passes per cycle.
    pub fn new(ports: usize, iterations: usize) -> Self {
        assert!(ports > 0 && ports <= MAX_PORTS && iterations > 0);
        let words = words_for_ports(ports);
        PimArbiter {
            ports,
            words,
            iterations,
            grants_in: vec![0; ports * words],
            probe: KernelProbe::default(),
        }
    }

    fn run<const W: usize>(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        let n = self.ports;
        out.clear();
        let mut free_in = PortSet::<W>::full(n);
        let mut free_out = PortSet::<W>::full(n);
        let mut iters = 0u64;
        let mut examined = 0u64;

        for _ in 0..self.iterations {
            iters += 1;
            // Grant: each free output picks a random requesting free input.
            self.grants_in.fill(0);
            let mut of = free_out;
            while let Some(output) = of.take_lowest() {
                let requesters = PortSet::<W>::from_words(cs.requesters(output)).and(&free_in);
                let count = requesters.count_ones();
                examined += u64::from(count);
                if count != 0 {
                    let input = requesters.kth_set_bit(rng.index(count as usize));
                    self.grants_in[input * W + (output >> 6)] |= 1u64 << (output & 63);
                }
            }
            // Accept: each input picks a random output among its grants.
            let mut any_accept = false;
            let mut inf = free_in;
            while let Some(input) = inf.take_lowest() {
                let granted = PortSet::<W>::from_words(&self.grants_in[input * W..(input + 1) * W]);
                if granted.is_empty() {
                    continue;
                }
                let output = granted.kth_set_bit(rng.index(granted.count_ones() as usize));
                let (level, c) = cs
                    .best_level_for(input, output)
                    .expect("granted request exists");
                out.add(Grant {
                    input,
                    output,
                    vc: c.vc,
                    level,
                });
                free_in.remove(input);
                free_out.remove(output);
                any_accept = true;
            }
            if !any_accept {
                break;
            }
        }
        self.probe.iterations(iters);
        self.probe.examined(examined);
        self.probe.matched(out.size() as u64);
        debug_assert!(out.is_consistent_with(cs));
    }
}

impl SwitchScheduler for PimArbiter {
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        assert_eq!(cs.ports(), self.ports);
        match self.words {
            1 => self.run::<1>(cs, rng, out),
            2 => self.run::<2>(cs, rng, out),
            _ => self.run::<4>(cs, rng, out),
        }
    }

    fn name(&self) -> &'static str {
        "Parallel Iterative Matching"
    }

    fn set_probe_enabled(&mut self, enabled: bool) {
        self.probe.set_enabled(enabled);
    }

    fn kernel_stats(&self) -> KernelStats {
        self.probe.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{Candidate, Priority};

    fn cand(input: usize, vc: usize, output: usize) -> Candidate {
        Candidate {
            input,
            vc,
            output,
            priority: Priority::new(1.0),
        }
    }

    #[test]
    fn permutation_fully_matched() {
        let mut cs = CandidateSet::new(4, 1);
        for i in 0..4 {
            cs.push(cand(i, 0, (i + 1) % 4));
        }
        let mut rng = SimRng::seed_from_u64(1);
        let m = PimArbiter::new(4, 1).schedule(&cs, &mut rng);
        assert_eq!(m.size(), 4);
    }

    #[test]
    fn permutation_fully_matched_at_multi_word_widths() {
        for ports in [70usize, 192] {
            let mut cs = CandidateSet::new(ports, 1);
            for i in 0..ports {
                cs.push(cand(i, 0, (i + 1) % ports));
            }
            let mut rng = SimRng::seed_from_u64(1);
            let m = PimArbiter::new(ports, 1).schedule(&cs, &mut rng);
            assert_eq!(m.size(), ports, "ports = {ports}");
        }
    }

    #[test]
    fn contention_yields_single_grant() {
        let mut cs = CandidateSet::new(4, 1);
        for i in 0..4 {
            cs.push(cand(i, 0, 2));
        }
        let mut rng = SimRng::seed_from_u64(2);
        let m = PimArbiter::new(4, 3).schedule(&cs, &mut rng);
        assert_eq!(m.size(), 1);
        assert!(m.output_matched(2));
    }

    #[test]
    fn service_is_statistically_fair() {
        // Two inputs fight for one output; over many cycles each should
        // win roughly half the time.
        let mut cs = CandidateSet::new(2, 1);
        cs.push(cand(0, 0, 0));
        cs.push(cand(1, 0, 0));
        let mut pim = PimArbiter::new(2, 1);
        let mut rng = SimRng::seed_from_u64(3);
        let wins0 = (0..2000)
            .filter(|_| pim.schedule(&cs, &mut rng).grant_for(0).is_some())
            .count();
        assert!((800..1200).contains(&wins0), "wins0 = {wins0}");
    }

    #[test]
    fn more_iterations_never_shrink_matching() {
        for seed in 0..20u64 {
            let mut gen = SimRng::seed_from_u64(seed);
            let mut cs = CandidateSet::new(4, 2);
            for input in 0..4 {
                let c1 = cand(input, 0, gen.index(4));
                let mut c2 = cand(input, 1, gen.index(4));
                c2.priority = Priority::new(0.5);
                cs.set_input(input, &[c1, c2]);
            }
            let mut rng_a = SimRng::seed_from_u64(seed + 100);
            let mut rng_b = SimRng::seed_from_u64(seed + 100);
            let one = PimArbiter::new(4, 1).schedule(&cs, &mut rng_a).size();
            let four = PimArbiter::new(4, 4).schedule(&cs, &mut rng_b).size();
            assert!(four >= one, "seed {seed}: {four} < {one}");
        }
    }
}
