//! Parallel Iterative Matching (Anderson et al.) — random iterative
//! matching, cited by the paper (§4, \[1\]) as the scheme WFA beats on
//! hardware cost.
//!
//! Structure mirrors iSLIP, but grant and accept choices are uniformly
//! random instead of round-robin, and no pointer state is kept.

use crate::candidate::CandidateSet;
use crate::matching::{Grant, Matching};
use crate::scheduler::SwitchScheduler;
use mmr_sim::rng::SimRng;

/// PIM with a configurable iteration count.
#[derive(Debug, Clone)]
pub struct PimArbiter {
    ports: usize,
    iterations: usize,
}

impl PimArbiter {
    /// PIM for `ports` ports running `iterations` passes per cycle.
    pub fn new(ports: usize, iterations: usize) -> Self {
        assert!(ports > 0 && iterations > 0);
        PimArbiter { ports, iterations }
    }
}

impl SwitchScheduler for PimArbiter {
    #[allow(clippy::needless_range_loop)] // port indices mirror the hardware
    fn schedule(&mut self, cs: &CandidateSet, rng: &mut SimRng) -> Matching {
        let n = self.ports;
        assert_eq!(cs.ports(), n);
        let mut matching = Matching::new(n);
        let mut input_free = vec![true; n];
        let mut output_free = vec![true; n];
        let mut requesters: Vec<usize> = Vec::with_capacity(n);

        for _ in 0..self.iterations {
            // Grant: each free output picks a random requesting free input.
            let mut granted_to: Vec<Option<usize>> = vec![None; n];
            for output in 0..n {
                if !output_free[output] {
                    continue;
                }
                requesters.clear();
                requesters.extend(
                    (0..n).filter(|&i| input_free[i] && cs.requests(i, output)),
                );
                if !requesters.is_empty() {
                    granted_to[output] = Some(requesters[rng.index(requesters.len())]);
                }
            }
            // Accept: each input picks a random output among its grants.
            let mut any_accept = false;
            for input in 0..n {
                if !input_free[input] {
                    continue;
                }
                requesters.clear(); // reuse as grant list
                requesters.extend((0..n).filter(|&o| granted_to[o] == Some(input)));
                if requesters.is_empty() {
                    continue;
                }
                let output = requesters[rng.index(requesters.len())];
                let c = cs.best_for(input, output).expect("granted request exists");
                let level = cs
                    .input_candidates(input)
                    .position(|x| x.vc == c.vc && x.output == c.output)
                    .expect("candidate present");
                matching.add(Grant { input, output, vc: c.vc, level });
                input_free[input] = false;
                output_free[output] = false;
                any_accept = true;
            }
            if !any_accept {
                break;
            }
        }
        debug_assert!(matching.is_consistent_with(cs));
        matching
    }

    fn name(&self) -> &'static str {
        "Parallel Iterative Matching"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{Candidate, Priority};

    fn cand(input: usize, vc: usize, output: usize) -> Candidate {
        Candidate { input, vc, output, priority: Priority::new(1.0) }
    }

    #[test]
    fn permutation_fully_matched() {
        let mut cs = CandidateSet::new(4, 1);
        for i in 0..4 {
            cs.push(cand(i, 0, (i + 1) % 4));
        }
        let mut rng = SimRng::seed_from_u64(1);
        let m = PimArbiter::new(4, 1).schedule(&cs, &mut rng);
        assert_eq!(m.size(), 4);
    }

    #[test]
    fn contention_yields_single_grant() {
        let mut cs = CandidateSet::new(4, 1);
        for i in 0..4 {
            cs.push(cand(i, 0, 2));
        }
        let mut rng = SimRng::seed_from_u64(2);
        let m = PimArbiter::new(4, 3).schedule(&cs, &mut rng);
        assert_eq!(m.size(), 1);
        assert!(m.output_matched(2));
    }

    #[test]
    fn service_is_statistically_fair() {
        // Two inputs fight for one output; over many cycles each should
        // win roughly half the time.
        let mut cs = CandidateSet::new(2, 1);
        cs.push(cand(0, 0, 0));
        cs.push(cand(1, 0, 0));
        let mut pim = PimArbiter::new(2, 1);
        let mut rng = SimRng::seed_from_u64(3);
        let wins0 = (0..2000)
            .filter(|_| pim.schedule(&cs, &mut rng).grant_for(0).is_some())
            .count();
        assert!((800..1200).contains(&wins0), "wins0 = {wins0}");
    }

    #[test]
    fn more_iterations_never_shrink_matching() {
        for seed in 0..20u64 {
            let mut gen = SimRng::seed_from_u64(seed);
            let mut cs = CandidateSet::new(4, 2);
            for input in 0..4 {
                let c1 = cand(input, 0, gen.index(4));
                let mut c2 = cand(input, 1, gen.index(4));
                c2.priority = Priority::new(0.5);
                cs.set_input(input, &[c1, c2]);
            }
            let mut rng_a = SimRng::seed_from_u64(seed + 100);
            let mut rng_b = SimRng::seed_from_u64(seed + 100);
            let one = PimArbiter::new(4, 1).schedule(&cs, &mut rng_a).size();
            let four = PimArbiter::new(4, 4).schedule(&cs, &mut rng_b).size();
            assert!(four >= one, "seed {seed}: {four} < {one}");
        }
    }
}
