//! Golden reference arbiters.
//!
//! Straight-line transcriptions of the six scheduling algorithms, kept
//! exactly as first implemented: dense `Vec<bool>` free maps allocated
//! per call, full conflict-vector recomputation after every COA grant,
//! O(ports) round-robin scans.  The optimized kernels in [`crate::coa`],
//! [`crate::wfa`], [`crate::islip`], [`crate::pim`], [`crate::greedy`]
//! and [`crate::random`] must agree with these **grant for grant** under
//! identical RNG seeds — the differential property tests in
//! `tests/differential.rs` enforce that, and `bench_report` measures the
//! speedup against them.
//!
//! Every RNG draw here is ordered exactly as in the optimized kernels
//! (ascending port iteration, a draw only when more than one tie, and so
//! on); any change to either side must preserve that pairing.
//!
//! The references are deliberately *width-independent*: free maps are
//! `Vec<bool>` and every candidate query goes through the scalar
//! [`CandidateSet`] accessors, so the same code is the golden model at 4,
//! 64, 128 and 256 ports.  That blindness to the port-set word width is
//! the point — when the optimized kernels' multi-word
//! ([`crate::portset::PortSet`]) paths disagree with these loops at any
//! width, the bug is in the bit algebra, never in the model.

use crate::candidate::{Candidate, CandidateSet};
use crate::matching::{Grant, Matching};
use crate::scheduler::SwitchScheduler;
use mmr_sim::rng::SimRng;

/// Reference COA: recomputes the whole conflict vector after each grant
/// (O(ports² · levels) per cycle).
#[derive(Debug, Clone)]
pub struct ReferenceCoa {
    ports: usize,
    conflicts: Vec<u32>,
    tie_buf: Vec<usize>,
}

impl ReferenceCoa {
    /// Reference COA for `ports` ports.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0);
        ReferenceCoa {
            ports,
            conflicts: Vec::new(),
            tie_buf: Vec::with_capacity(ports),
        }
    }

    /// Recompute the conflict vector over free inputs/outputs; returns the
    /// lowest level that still has requests, if any.
    #[allow(clippy::needless_range_loop)] // port indices mirror the hardware
    fn recompute_conflicts(
        &mut self,
        cs: &CandidateSet,
        input_free: &[bool],
        output_free: &[bool],
    ) -> Option<usize> {
        let levels = cs.levels();
        self.conflicts.clear();
        self.conflicts.resize(levels * self.ports, 0);
        let mut lowest: Option<usize> = None;
        for input in 0..self.ports {
            if !input_free[input] {
                continue;
            }
            for (level, c) in cs.input_candidates(input).enumerate() {
                debug_assert_eq!(c.input, input);
                if output_free[c.output] {
                    self.conflicts[level * self.ports + c.output] += 1;
                    if lowest.is_none_or(|l| level < l) {
                        lowest = Some(level);
                    }
                }
            }
        }
        lowest
    }
}

impl SwitchScheduler for ReferenceCoa {
    #[allow(clippy::needless_range_loop)] // port indices mirror the hardware
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        assert_eq!(cs.ports(), self.ports);
        out.clear();
        let mut input_free = vec![true; self.ports];
        let mut output_free = vec![true; self.ports];

        while let Some(level) = self.recompute_conflicts(cs, &input_free, &output_free) {
            let row = &self.conflicts[level * self.ports..(level + 1) * self.ports];
            let min_conflict = row
                .iter()
                .copied()
                .filter(|&c| c > 0)
                .min()
                .expect("level has requests");
            self.tie_buf.clear();
            self.tie_buf.extend(
                row.iter()
                    .enumerate()
                    .filter(|&(_, &c)| c == min_conflict)
                    .map(|(o, _)| o),
            );
            let output = if self.tie_buf.len() == 1 {
                self.tie_buf[0]
            } else {
                self.tie_buf[rng.index(self.tie_buf.len())]
            };

            let mut best: Option<(usize, Candidate)> = None;
            let mut ties = 0u32;
            for input in 0..self.ports {
                if !input_free[input] {
                    continue;
                }
                let Some(c) = cs.get(input, level) else {
                    continue;
                };
                if c.output != output {
                    continue;
                }
                match &best {
                    None => {
                        best = Some((input, c));
                        ties = 1;
                    }
                    Some((_, b)) if c.priority > b.priority => {
                        best = Some((input, c));
                        ties = 1;
                    }
                    Some((_, b)) if c.priority == b.priority => {
                        ties += 1;
                        if rng.below(ties as u64) == 0 {
                            best = Some((input, c));
                        }
                    }
                    _ => {}
                }
            }
            let (input, cand) =
                best.expect("conflict vector said this (level, output) has a request");
            out.add(Grant {
                input,
                output,
                vc: cand.vc,
                level,
            });
            input_free[input] = false;
            output_free[output] = false;
        }
        debug_assert!(out.is_consistent_with(cs));
    }

    fn name(&self) -> &'static str {
        "Candidate-Order Arbiter (reference)"
    }
}

/// Reference WFA: dense boolean request matrix rebuilt per cycle.
#[derive(Debug, Clone)]
pub struct ReferenceWfa {
    ports: usize,
    start_diag: usize,
    wrapped: bool,
    top_level_only: bool,
    requests: Vec<bool>,
}

impl ReferenceWfa {
    /// Reference wrapped WFA.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0);
        ReferenceWfa {
            ports,
            start_diag: 0,
            wrapped: true,
            top_level_only: false,
            requests: vec![false; ports * ports],
        }
    }

    /// Reference unwrapped (fixed-diagonal) variant.
    pub fn fixed(ports: usize) -> Self {
        ReferenceWfa {
            wrapped: false,
            ..ReferenceWfa::new(ports)
        }
    }

    /// Reference level-1-requests variant.
    pub fn first_level_only(ports: usize) -> Self {
        ReferenceWfa {
            top_level_only: true,
            ..ReferenceWfa::new(ports)
        }
    }
}

impl SwitchScheduler for ReferenceWfa {
    #[allow(clippy::needless_range_loop)] // crosspoint (row, column) indexing
    fn schedule_into(&mut self, cs: &CandidateSet, _rng: &mut SimRng, out: &mut Matching) {
        let n = self.ports;
        assert_eq!(cs.ports(), n);
        out.clear();
        self.requests.fill(false);
        if self.top_level_only {
            for input in 0..n {
                if let Some(c) = cs.get(input, 0) {
                    self.requests[c.input * n + c.output] = true;
                }
            }
        } else {
            for c in cs.iter() {
                self.requests[c.input * n + c.output] = true;
            }
        }

        let mut row_free = vec![true; n];
        let mut col_free = vec![true; n];
        for d in 0..n {
            let diag = (self.start_diag + d) % n;
            for input in 0..n {
                let output = (diag + n - input) % n;
                if self.requests[input * n + output] && row_free[input] && col_free[output] {
                    let c = cs
                        .best_for(input, output)
                        .expect("request matrix was built from candidates");
                    let level = cs
                        .input_candidates(input)
                        .position(|x| x.vc == c.vc && x.output == c.output)
                        .expect("candidate present");
                    out.add(Grant {
                        input,
                        output,
                        vc: c.vc,
                        level,
                    });
                    row_free[input] = false;
                    col_free[output] = false;
                }
            }
        }
        if self.wrapped {
            self.start_diag = (self.start_diag + 1) % n;
        }
        debug_assert!(out.is_consistent_with(cs));
    }

    fn name(&self) -> &'static str {
        "Wave Front Arbiter (reference)"
    }

    fn reset(&mut self) {
        self.start_diag = 0;
    }
}

/// Reference iSLIP: O(ports) linear round-robin scans per grant/accept.
#[derive(Debug, Clone)]
pub struct ReferenceIslip {
    ports: usize,
    iterations: usize,
    grant_ptr: Vec<usize>,
    accept_ptr: Vec<usize>,
}

impl ReferenceIslip {
    /// Reference iSLIP for `ports` ports and `iterations` passes.
    pub fn new(ports: usize, iterations: usize) -> Self {
        assert!(ports > 0 && iterations > 0);
        ReferenceIslip {
            ports,
            iterations,
            grant_ptr: vec![0; ports],
            accept_ptr: vec![0; ports],
        }
    }
}

impl SwitchScheduler for ReferenceIslip {
    #[allow(clippy::needless_range_loop)] // port indices mirror the hardware
    fn schedule_into(&mut self, cs: &CandidateSet, _rng: &mut SimRng, out: &mut Matching) {
        let n = self.ports;
        assert_eq!(cs.ports(), n);
        out.clear();
        let mut input_free = vec![true; n];
        let mut output_free = vec![true; n];

        for iter in 0..self.iterations {
            let mut granted_to: Vec<Option<usize>> = vec![None; n];
            for output in 0..n {
                if !output_free[output] {
                    continue;
                }
                let start = self.grant_ptr[output];
                for off in 0..n {
                    let input = (start + off) % n;
                    if input_free[input] && cs.requests(input, output) {
                        granted_to[output] = Some(input);
                        break;
                    }
                }
            }
            let mut any_accept = false;
            for input in 0..n {
                if !input_free[input] {
                    continue;
                }
                let start = self.accept_ptr[input];
                let mut accepted: Option<usize> = None;
                for off in 0..n {
                    let output = (start + off) % n;
                    if granted_to[output] == Some(input) {
                        accepted = Some(output);
                        break;
                    }
                }
                let Some(output) = accepted else { continue };
                let c = cs.best_for(input, output).expect("granted request exists");
                let level = cs
                    .input_candidates(input)
                    .position(|x| x.vc == c.vc && x.output == c.output)
                    .expect("candidate present");
                out.add(Grant {
                    input,
                    output,
                    vc: c.vc,
                    level,
                });
                input_free[input] = false;
                output_free[output] = false;
                any_accept = true;
                if iter == 0 {
                    self.grant_ptr[output] = (input + 1) % n;
                    self.accept_ptr[input] = (output + 1) % n;
                }
            }
            if !any_accept {
                break;
            }
        }
        debug_assert!(out.is_consistent_with(cs));
    }

    fn name(&self) -> &'static str {
        "iSLIP (reference)"
    }

    fn reset(&mut self) {
        self.grant_ptr.fill(0);
        self.accept_ptr.fill(0);
    }
}

/// Reference PIM: requester lists materialized per output per iteration.
#[derive(Debug, Clone)]
pub struct ReferencePim {
    ports: usize,
    iterations: usize,
}

impl ReferencePim {
    /// Reference PIM for `ports` ports and `iterations` passes.
    pub fn new(ports: usize, iterations: usize) -> Self {
        assert!(ports > 0 && iterations > 0);
        ReferencePim { ports, iterations }
    }
}

impl SwitchScheduler for ReferencePim {
    #[allow(clippy::needless_range_loop)] // port indices mirror the hardware
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        let n = self.ports;
        assert_eq!(cs.ports(), n);
        out.clear();
        let mut input_free = vec![true; n];
        let mut output_free = vec![true; n];
        let mut requesters: Vec<usize> = Vec::with_capacity(n);

        for _ in 0..self.iterations {
            let mut granted_to: Vec<Option<usize>> = vec![None; n];
            for output in 0..n {
                if !output_free[output] {
                    continue;
                }
                requesters.clear();
                requesters.extend((0..n).filter(|&i| input_free[i] && cs.requests(i, output)));
                if !requesters.is_empty() {
                    granted_to[output] = Some(requesters[rng.index(requesters.len())]);
                }
            }
            let mut any_accept = false;
            for input in 0..n {
                if !input_free[input] {
                    continue;
                }
                requesters.clear(); // reuse as grant list
                requesters.extend((0..n).filter(|&o| granted_to[o] == Some(input)));
                if requesters.is_empty() {
                    continue;
                }
                let output = requesters[rng.index(requesters.len())];
                let c = cs.best_for(input, output).expect("granted request exists");
                let level = cs
                    .input_candidates(input)
                    .position(|x| x.vc == c.vc && x.output == c.output)
                    .expect("candidate present");
                out.add(Grant {
                    input,
                    output,
                    vc: c.vc,
                    level,
                });
                input_free[input] = false;
                output_free[output] = false;
                any_accept = true;
            }
            if !any_accept {
                break;
            }
        }
        debug_assert!(out.is_consistent_with(cs));
    }

    fn name(&self) -> &'static str {
        "Parallel Iterative Matching (reference)"
    }
}

/// Reference greedy-priority matching with per-call key allocation.
#[derive(Debug, Clone)]
pub struct ReferenceGreedy {
    ports: usize,
    scratch: Vec<(Candidate, usize)>,
}

impl ReferenceGreedy {
    /// Reference greedy arbiter for `ports` ports.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0);
        ReferenceGreedy {
            ports,
            scratch: Vec::new(),
        }
    }
}

impl SwitchScheduler for ReferenceGreedy {
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        assert_eq!(cs.ports(), self.ports);
        out.clear();
        self.scratch.clear();
        for input in 0..self.ports {
            for (level, c) in cs.input_candidates(input).enumerate() {
                self.scratch.push((c, level));
            }
        }
        let mut keyed: Vec<(u64, usize)> = self
            .scratch
            .iter()
            .enumerate()
            .map(|(i, _)| (rng.next_u64_raw(), i))
            .collect();
        keyed.sort_unstable_by(|a, b| {
            let pa = self.scratch[a.1].0.priority;
            let pb = self.scratch[b.1].0.priority;
            pb.cmp(&pa).then(a.0.cmp(&b.0))
        });

        let mut input_free = vec![true; self.ports];
        let mut output_free = vec![true; self.ports];
        for (_, idx) in keyed {
            let (c, level) = self.scratch[idx];
            if input_free[c.input] && output_free[c.output] {
                out.add(Grant {
                    input: c.input,
                    output: c.output,
                    vc: c.vc,
                    level,
                });
                input_free[c.input] = false;
                output_free[c.output] = false;
            }
        }
        debug_assert!(out.is_consistent_with(cs));
    }

    fn name(&self) -> &'static str {
        "Greedy priority (reference)"
    }
}

/// Reference random maximal matching with O(ports² · levels) pair
/// enumeration.
#[derive(Debug, Clone)]
pub struct ReferenceRandom {
    ports: usize,
    pairs: Vec<(usize, usize)>,
}

impl ReferenceRandom {
    /// Reference random arbiter for `ports` ports.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0);
        ReferenceRandom {
            ports,
            pairs: Vec::new(),
        }
    }
}

impl SwitchScheduler for ReferenceRandom {
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        assert_eq!(cs.ports(), self.ports);
        out.clear();
        self.pairs.clear();
        for input in 0..self.ports {
            for output in 0..self.ports {
                if cs.requests(input, output) {
                    self.pairs.push((input, output));
                }
            }
        }
        rng.shuffle(&mut self.pairs);
        let mut input_free = vec![true; self.ports];
        let mut output_free = vec![true; self.ports];
        for &(input, output) in &self.pairs {
            if input_free[input] && output_free[output] {
                let c = cs
                    .best_for(input, output)
                    .expect("pair built from candidates");
                let level = cs
                    .input_candidates(input)
                    .position(|x| x.vc == c.vc && x.output == c.output)
                    .expect("candidate present");
                out.add(Grant {
                    input,
                    output,
                    vc: c.vc,
                    level,
                });
                input_free[input] = false;
                output_free[output] = false;
            }
        }
        debug_assert!(out.is_consistent_with(cs));
    }

    fn name(&self) -> &'static str {
        "Random maximal matching (reference)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::Priority;
    use crate::scheduler::ArbiterKind;

    #[test]
    fn references_instantiate_for_every_kind() {
        for kind in ArbiterKind::all() {
            let r = kind.instantiate_reference(4);
            assert!(r.name().ends_with("(reference)"), "{}", r.name());
        }
    }

    #[test]
    fn reference_coa_smoke() {
        let mut cs = CandidateSet::new(4, 2);
        cs.push(Candidate {
            input: 0,
            vc: 0,
            output: 2,
            priority: Priority::new(1.0),
        });
        cs.push(Candidate {
            input: 1,
            vc: 0,
            output: 2,
            priority: Priority::new(9.0),
        });
        let mut rng = SimRng::seed_from_u64(0);
        let m = ReferenceCoa::new(4).schedule(&cs, &mut rng);
        assert_eq!(m.size(), 1);
        assert_eq!(m.grant_for(1).unwrap().output, 2);
    }
}
