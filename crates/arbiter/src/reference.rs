//! Golden reference arbiters.
//!
//! Straight-line transcriptions of the six scheduling algorithms, kept
//! exactly as first implemented: dense `Vec<bool>` free maps allocated
//! per call, full conflict-vector recomputation after every COA grant,
//! O(ports) round-robin scans.  The optimized kernels in [`crate::coa`],
//! [`crate::wfa`], [`crate::islip`], [`crate::pim`], [`crate::greedy`]
//! and [`crate::random`] must agree with these **grant for grant** under
//! identical RNG seeds — the differential property tests in
//! `tests/differential.rs` enforce that, and `bench_report` measures the
//! speedup against them.
//!
//! Every RNG draw here is ordered exactly as in the optimized kernels
//! (ascending port iteration, a draw only when more than one tie, and so
//! on); any change to either side must preserve that pairing.
//!
//! The references are deliberately *width-independent*: free maps are
//! `Vec<bool>` and every candidate query goes through the scalar
//! [`CandidateSet`] accessors, so the same code is the golden model at 4,
//! 64, 128 and 256 ports.  That blindness to the port-set word width is
//! the point — when the optimized kernels' multi-word
//! ([`crate::portset::PortSet`]) paths disagree with these loops at any
//! width, the bug is in the bit algebra, never in the model.

use crate::candidate::{Candidate, CandidateSet};
use crate::matching::{Grant, Matching};
use crate::scheduler::SwitchScheduler;
use mmr_sim::rng::SimRng;

/// Reference COA: recomputes the whole conflict vector after each grant
/// (O(ports² · levels) per cycle).
#[derive(Debug, Clone)]
pub struct ReferenceCoa {
    ports: usize,
    conflicts: Vec<u32>,
    tie_buf: Vec<usize>,
}

impl ReferenceCoa {
    /// Reference COA for `ports` ports.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0);
        ReferenceCoa {
            ports,
            conflicts: Vec::new(),
            tie_buf: Vec::with_capacity(ports),
        }
    }

    /// Recompute the conflict vector over free inputs/outputs; returns the
    /// lowest level that still has requests, if any.
    #[allow(clippy::needless_range_loop)] // port indices mirror the hardware
    fn recompute_conflicts(
        &mut self,
        cs: &CandidateSet,
        input_free: &[bool],
        output_free: &[bool],
    ) -> Option<usize> {
        let levels = cs.levels();
        self.conflicts.clear();
        self.conflicts.resize(levels * self.ports, 0);
        let mut lowest: Option<usize> = None;
        for input in 0..self.ports {
            if !input_free[input] {
                continue;
            }
            for (level, c) in cs.input_candidates(input).enumerate() {
                debug_assert_eq!(c.input, input);
                if output_free[c.output] {
                    self.conflicts[level * self.ports + c.output] += 1;
                    if lowest.is_none_or(|l| level < l) {
                        lowest = Some(level);
                    }
                }
            }
        }
        lowest
    }
}

impl SwitchScheduler for ReferenceCoa {
    #[allow(clippy::needless_range_loop)] // port indices mirror the hardware
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        assert_eq!(cs.ports(), self.ports);
        out.clear();
        let mut input_free = vec![true; self.ports];
        let mut output_free = vec![true; self.ports];

        while let Some(level) = self.recompute_conflicts(cs, &input_free, &output_free) {
            let row = &self.conflicts[level * self.ports..(level + 1) * self.ports];
            let min_conflict = row
                .iter()
                .copied()
                .filter(|&c| c > 0)
                .min()
                .expect("level has requests");
            self.tie_buf.clear();
            self.tie_buf.extend(
                row.iter()
                    .enumerate()
                    .filter(|&(_, &c)| c == min_conflict)
                    .map(|(o, _)| o),
            );
            let output = if self.tie_buf.len() == 1 {
                self.tie_buf[0]
            } else {
                self.tie_buf[rng.index(self.tie_buf.len())]
            };

            let mut best: Option<(usize, Candidate)> = None;
            let mut ties = 0u32;
            for input in 0..self.ports {
                if !input_free[input] {
                    continue;
                }
                let Some(c) = cs.get(input, level) else {
                    continue;
                };
                if c.output != output {
                    continue;
                }
                match &best {
                    None => {
                        best = Some((input, c));
                        ties = 1;
                    }
                    Some((_, b)) if c.priority > b.priority => {
                        best = Some((input, c));
                        ties = 1;
                    }
                    Some((_, b)) if c.priority == b.priority => {
                        ties += 1;
                        if rng.below(ties as u64) == 0 {
                            best = Some((input, c));
                        }
                    }
                    _ => {}
                }
            }
            let (input, cand) =
                best.expect("conflict vector said this (level, output) has a request");
            out.add(Grant {
                input,
                output,
                vc: cand.vc,
                level,
            });
            input_free[input] = false;
            output_free[output] = false;
        }
        debug_assert!(out.is_consistent_with(cs));
    }

    fn name(&self) -> &'static str {
        "Candidate-Order Arbiter (reference)"
    }
}

/// Reference WFA: dense boolean request matrix rebuilt per cycle.
#[derive(Debug, Clone)]
pub struct ReferenceWfa {
    ports: usize,
    start_diag: usize,
    wrapped: bool,
    top_level_only: bool,
    requests: Vec<bool>,
}

impl ReferenceWfa {
    /// Reference wrapped WFA.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0);
        ReferenceWfa {
            ports,
            start_diag: 0,
            wrapped: true,
            top_level_only: false,
            requests: vec![false; ports * ports],
        }
    }

    /// Reference unwrapped (fixed-diagonal) variant.
    pub fn fixed(ports: usize) -> Self {
        ReferenceWfa {
            wrapped: false,
            ..ReferenceWfa::new(ports)
        }
    }

    /// Reference level-1-requests variant.
    pub fn first_level_only(ports: usize) -> Self {
        ReferenceWfa {
            top_level_only: true,
            ..ReferenceWfa::new(ports)
        }
    }
}

impl SwitchScheduler for ReferenceWfa {
    #[allow(clippy::needless_range_loop)] // crosspoint (row, column) indexing
    fn schedule_into(&mut self, cs: &CandidateSet, _rng: &mut SimRng, out: &mut Matching) {
        let n = self.ports;
        assert_eq!(cs.ports(), n);
        out.clear();
        self.requests.fill(false);
        if self.top_level_only {
            for input in 0..n {
                if let Some(c) = cs.get(input, 0) {
                    self.requests[c.input * n + c.output] = true;
                }
            }
        } else {
            for c in cs.iter() {
                self.requests[c.input * n + c.output] = true;
            }
        }

        let mut row_free = vec![true; n];
        let mut col_free = vec![true; n];
        for d in 0..n {
            let diag = (self.start_diag + d) % n;
            for input in 0..n {
                let output = (diag + n - input) % n;
                if self.requests[input * n + output] && row_free[input] && col_free[output] {
                    let c = cs
                        .best_for(input, output)
                        .expect("request matrix was built from candidates");
                    let level = cs
                        .input_candidates(input)
                        .position(|x| x.vc == c.vc && x.output == c.output)
                        .expect("candidate present");
                    out.add(Grant {
                        input,
                        output,
                        vc: c.vc,
                        level,
                    });
                    row_free[input] = false;
                    col_free[output] = false;
                }
            }
        }
        if self.wrapped {
            self.start_diag = (self.start_diag + 1) % n;
        }
        debug_assert!(out.is_consistent_with(cs));
    }

    fn name(&self) -> &'static str {
        "Wave Front Arbiter (reference)"
    }

    fn reset(&mut self) {
        self.start_diag = 0;
    }
}

/// Reference iSLIP: O(ports) linear round-robin scans per grant/accept.
#[derive(Debug, Clone)]
pub struct ReferenceIslip {
    ports: usize,
    iterations: usize,
    grant_ptr: Vec<usize>,
    accept_ptr: Vec<usize>,
}

impl ReferenceIslip {
    /// Reference iSLIP for `ports` ports and `iterations` passes.
    pub fn new(ports: usize, iterations: usize) -> Self {
        assert!(ports > 0 && iterations > 0);
        ReferenceIslip {
            ports,
            iterations,
            grant_ptr: vec![0; ports],
            accept_ptr: vec![0; ports],
        }
    }
}

impl SwitchScheduler for ReferenceIslip {
    #[allow(clippy::needless_range_loop)] // port indices mirror the hardware
    fn schedule_into(&mut self, cs: &CandidateSet, _rng: &mut SimRng, out: &mut Matching) {
        let n = self.ports;
        assert_eq!(cs.ports(), n);
        out.clear();
        let mut input_free = vec![true; n];
        let mut output_free = vec![true; n];

        for iter in 0..self.iterations {
            let mut granted_to: Vec<Option<usize>> = vec![None; n];
            for output in 0..n {
                if !output_free[output] {
                    continue;
                }
                let start = self.grant_ptr[output];
                for off in 0..n {
                    let input = (start + off) % n;
                    if input_free[input] && cs.requests(input, output) {
                        granted_to[output] = Some(input);
                        break;
                    }
                }
            }
            let mut any_accept = false;
            for input in 0..n {
                if !input_free[input] {
                    continue;
                }
                let start = self.accept_ptr[input];
                let mut accepted: Option<usize> = None;
                for off in 0..n {
                    let output = (start + off) % n;
                    if granted_to[output] == Some(input) {
                        accepted = Some(output);
                        break;
                    }
                }
                let Some(output) = accepted else { continue };
                let c = cs.best_for(input, output).expect("granted request exists");
                let level = cs
                    .input_candidates(input)
                    .position(|x| x.vc == c.vc && x.output == c.output)
                    .expect("candidate present");
                out.add(Grant {
                    input,
                    output,
                    vc: c.vc,
                    level,
                });
                input_free[input] = false;
                output_free[output] = false;
                any_accept = true;
                if iter == 0 {
                    self.grant_ptr[output] = (input + 1) % n;
                    self.accept_ptr[input] = (output + 1) % n;
                }
            }
            if !any_accept {
                break;
            }
        }
        debug_assert!(out.is_consistent_with(cs));
    }

    fn name(&self) -> &'static str {
        "iSLIP (reference)"
    }

    fn reset(&mut self) {
        self.grant_ptr.fill(0);
        self.accept_ptr.fill(0);
    }
}

/// Reference PIM: requester lists materialized per output per iteration.
#[derive(Debug, Clone)]
pub struct ReferencePim {
    ports: usize,
    iterations: usize,
}

impl ReferencePim {
    /// Reference PIM for `ports` ports and `iterations` passes.
    pub fn new(ports: usize, iterations: usize) -> Self {
        assert!(ports > 0 && iterations > 0);
        ReferencePim { ports, iterations }
    }
}

impl SwitchScheduler for ReferencePim {
    #[allow(clippy::needless_range_loop)] // port indices mirror the hardware
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        let n = self.ports;
        assert_eq!(cs.ports(), n);
        out.clear();
        let mut input_free = vec![true; n];
        let mut output_free = vec![true; n];
        let mut requesters: Vec<usize> = Vec::with_capacity(n);

        for _ in 0..self.iterations {
            let mut granted_to: Vec<Option<usize>> = vec![None; n];
            for output in 0..n {
                if !output_free[output] {
                    continue;
                }
                requesters.clear();
                requesters.extend((0..n).filter(|&i| input_free[i] && cs.requests(i, output)));
                if !requesters.is_empty() {
                    granted_to[output] = Some(requesters[rng.index(requesters.len())]);
                }
            }
            let mut any_accept = false;
            for input in 0..n {
                if !input_free[input] {
                    continue;
                }
                requesters.clear(); // reuse as grant list
                requesters.extend((0..n).filter(|&o| granted_to[o] == Some(input)));
                if requesters.is_empty() {
                    continue;
                }
                let output = requesters[rng.index(requesters.len())];
                let c = cs.best_for(input, output).expect("granted request exists");
                let level = cs
                    .input_candidates(input)
                    .position(|x| x.vc == c.vc && x.output == c.output)
                    .expect("candidate present");
                out.add(Grant {
                    input,
                    output,
                    vc: c.vc,
                    level,
                });
                input_free[input] = false;
                output_free[output] = false;
                any_accept = true;
            }
            if !any_accept {
                break;
            }
        }
        debug_assert!(out.is_consistent_with(cs));
    }

    fn name(&self) -> &'static str {
        "Parallel Iterative Matching (reference)"
    }
}

/// Reference greedy-priority matching with per-call key allocation.
#[derive(Debug, Clone)]
pub struct ReferenceGreedy {
    ports: usize,
    scratch: Vec<(Candidate, usize)>,
}

impl ReferenceGreedy {
    /// Reference greedy arbiter for `ports` ports.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0);
        ReferenceGreedy {
            ports,
            scratch: Vec::new(),
        }
    }
}

impl SwitchScheduler for ReferenceGreedy {
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        assert_eq!(cs.ports(), self.ports);
        out.clear();
        self.scratch.clear();
        for input in 0..self.ports {
            for (level, c) in cs.input_candidates(input).enumerate() {
                self.scratch.push((c, level));
            }
        }
        let mut keyed: Vec<(u64, usize)> = self
            .scratch
            .iter()
            .enumerate()
            .map(|(i, _)| (rng.next_u64_raw(), i))
            .collect();
        keyed.sort_unstable_by(|a, b| {
            let pa = self.scratch[a.1].0.priority;
            let pb = self.scratch[b.1].0.priority;
            pb.cmp(&pa).then(a.0.cmp(&b.0))
        });

        let mut input_free = vec![true; self.ports];
        let mut output_free = vec![true; self.ports];
        for (_, idx) in keyed {
            let (c, level) = self.scratch[idx];
            if input_free[c.input] && output_free[c.output] {
                out.add(Grant {
                    input: c.input,
                    output: c.output,
                    vc: c.vc,
                    level,
                });
                input_free[c.input] = false;
                output_free[c.output] = false;
            }
        }
        debug_assert!(out.is_consistent_with(cs));
    }

    fn name(&self) -> &'static str {
        "Greedy priority (reference)"
    }
}

/// Reference random maximal matching with O(ports² · levels) pair
/// enumeration.
#[derive(Debug, Clone)]
pub struct ReferenceRandom {
    ports: usize,
    pairs: Vec<(usize, usize)>,
}

impl ReferenceRandom {
    /// Reference random arbiter for `ports` ports.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0);
        ReferenceRandom {
            ports,
            pairs: Vec::new(),
        }
    }
}

impl SwitchScheduler for ReferenceRandom {
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        assert_eq!(cs.ports(), self.ports);
        out.clear();
        self.pairs.clear();
        for input in 0..self.ports {
            for output in 0..self.ports {
                if cs.requests(input, output) {
                    self.pairs.push((input, output));
                }
            }
        }
        rng.shuffle(&mut self.pairs);
        let mut input_free = vec![true; self.ports];
        let mut output_free = vec![true; self.ports];
        for &(input, output) in &self.pairs {
            if input_free[input] && output_free[output] {
                let c = cs
                    .best_for(input, output)
                    .expect("pair built from candidates");
                let level = cs
                    .input_candidates(input)
                    .position(|x| x.vc == c.vc && x.output == c.output)
                    .expect("candidate present");
                out.add(Grant {
                    input,
                    output,
                    vc: c.vc,
                    level,
                });
                input_free[input] = false;
                output_free[output] = false;
            }
        }
        debug_assert!(out.is_consistent_with(cs));
    }

    fn name(&self) -> &'static str {
        "Random maximal matching (reference)"
    }
}

/// Reference MWM oracle: dense weight matrix built with scalar candidate
/// queries, Jonker–Volgenant augmenting paths with per-call allocation,
/// comparator-sorted greedy path.  Mirrors [`crate::mwm::MwmArbiter`]
/// exactly, including the [`crate::mwm::EXACT_PORT_LIMIT`] fallback to
/// the greedy ½-approximation.
#[derive(Debug, Clone)]
pub struct ReferenceMwm {
    ports: usize,
    exact: bool,
}

impl ReferenceMwm {
    /// Reference exact oracle for `ports` ports.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0);
        ReferenceMwm { ports, exact: true }
    }

    /// Reference greedy ½-approximation for `ports` ports.
    pub fn approx(ports: usize) -> Self {
        ReferenceMwm {
            ports,
            exact: false,
        }
    }

    #[allow(clippy::needless_range_loop)] // port indices mirror the hardware
    fn schedule_exact(&self, cs: &CandidateSet, out: &mut Matching) {
        let n = self.ports;
        // Dense shaped weight matrix, exactly as the kernel builds it:
        // best-candidate priority per pair, then the shared
        // [`crate::mwm::shaped_weight`] normalization (the weight
        // function is the *model*, so both sides call it and their f64
        // streams stay bit-identical); missing edges stay 0.
        let mut w = vec![0.0f64; n * n];
        let mut floor = f64::INFINITY;
        let mut ceil = f64::NEG_INFINITY;
        let mut edges = 0u64;
        for input in 0..n {
            for output in 0..n {
                if let Some(c) = cs.best_for(input, output) {
                    w[input * n + output] = c.priority.0;
                    floor = floor.min(c.priority.0);
                    ceil = ceil.max(c.priority.0);
                    edges += 1;
                }
            }
        }
        if edges == 0 {
            return;
        }
        let mut maxw = 0.0f64;
        for input in 0..n {
            for output in 0..n {
                if cs.requests(input, output) {
                    let cell = &mut w[input * n + output];
                    *cell = crate::mwm::shaped_weight(*cell, floor, ceil, n);
                    maxw = maxw.max(*cell);
                }
            }
        }
        // Jonker–Volgenant over cost = maxw − w, 1-indexed, column 0 the
        // virtual root — line-for-line the kernel's solver with fresh
        // allocations, so the f64 sequences are bit-identical.
        let mut pot_row = vec![0.0f64; n + 1];
        let mut pot_col = vec![0.0f64; n + 1];
        let mut col_to_row = vec![0usize; n + 1];
        let mut way = vec![0usize; n + 1];
        for row in 1..=n {
            col_to_row[0] = row;
            let mut j0 = 0usize;
            let mut minv = vec![f64::INFINITY; n + 1];
            let mut used = vec![false; n + 1];
            loop {
                used[j0] = true;
                let i0 = col_to_row[j0];
                let mut delta = f64::INFINITY;
                let mut j1 = 0usize;
                for j in 1..=n {
                    if used[j] {
                        continue;
                    }
                    let cost = maxw - w[(i0 - 1) * n + (j - 1)];
                    let cur = cost - pot_row[i0] - pot_col[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
                for j in 0..=n {
                    if used[j] {
                        pot_row[col_to_row[j]] += delta;
                        pot_col[j] -= delta;
                    } else {
                        minv[j] -= delta;
                    }
                }
                j0 = j1;
                if col_to_row[j0] == 0 {
                    break;
                }
            }
            loop {
                let j1 = way[j0];
                col_to_row[j0] = col_to_row[j1];
                j0 = j1;
                if j0 == 0 {
                    break;
                }
            }
        }
        for output in 0..n {
            let row = col_to_row[output + 1];
            debug_assert!(row != 0, "perfect matching covers every column");
            let input = row - 1;
            if w[input * n + output] > 0.0 {
                let (level, c) = cs
                    .best_level_for(input, output)
                    .expect("matched edge has a candidate");
                out.add(Grant {
                    input,
                    output,
                    vc: c.vc,
                    level,
                });
            }
        }
    }

    #[allow(clippy::needless_range_loop)] // port indices mirror the hardware
    fn schedule_greedy(&self, cs: &CandidateSet, out: &mut Matching) {
        let n = self.ports;
        // Edges by descending best priority, then ascending (input,
        // output) — the comparator form of the kernel's packed-key sort.
        let mut edges: Vec<(Candidate, usize, usize)> = Vec::new();
        for input in 0..n {
            for output in 0..n {
                if let Some(c) = cs.best_for(input, output) {
                    edges.push((c, input, output));
                }
            }
        }
        edges.sort_unstable_by(|a, b| {
            b.0.priority
                .cmp(&a.0.priority)
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
        let mut input_free = vec![true; n];
        let mut output_free = vec![true; n];
        for &(_, input, output) in &edges {
            if input_free[input] && output_free[output] {
                let (level, c) = cs
                    .best_level_for(input, output)
                    .expect("edge has a candidate");
                out.add(Grant {
                    input,
                    output,
                    vc: c.vc,
                    level,
                });
                input_free[input] = false;
                output_free[output] = false;
            }
        }
    }
}

impl SwitchScheduler for ReferenceMwm {
    fn schedule_into(&mut self, cs: &CandidateSet, _rng: &mut SimRng, out: &mut Matching) {
        assert_eq!(cs.ports(), self.ports);
        out.clear();
        if self.exact && self.ports <= crate::mwm::EXACT_PORT_LIMIT {
            self.schedule_exact(cs, out);
        } else {
            self.schedule_greedy(cs, out);
        }
        debug_assert!(out.is_consistent_with(cs));
    }

    fn name(&self) -> &'static str {
        if self.exact {
            "MWM (reference)"
        } else {
            "MWM-approx (reference)"
        }
    }
}

/// Reference frame-based fair arbiter: dense scalar loops over the same
/// quota/eligibility rules as [`crate::frame::FrameFairArbiter`], with
/// the identical reservoir RNG-draw sequence.
#[derive(Debug, Clone)]
pub struct ReferenceFrameFair {
    ports: usize,
    frame: u32,
    quota: u32,
    cycle_in_frame: u32,
    used: Vec<u32>,
}

impl ReferenceFrameFair {
    /// Reference frame-fair arbiter for `ports` ports and a
    /// `frame`-cycle frame.
    pub fn new(ports: usize, frame: u32) -> Self {
        assert!(ports > 0 && frame > 0);
        ReferenceFrameFair {
            ports,
            frame,
            quota: (frame / ports as u32).max(1),
            cycle_in_frame: 0,
            used: vec![0; ports * ports],
        }
    }
}

impl SwitchScheduler for ReferenceFrameFair {
    #[allow(clippy::needless_range_loop)] // port indices mirror the hardware
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        let n = self.ports;
        assert_eq!(cs.ports(), n);
        out.clear();
        let mut input_free = vec![true; n];
        for output in 0..n {
            let requesters: Vec<usize> = (0..n)
                .filter(|&i| input_free[i] && cs.requests(i, output))
                .collect();
            if requesters.is_empty() {
                continue;
            }
            let any_eligible = requesters
                .iter()
                .any(|&i| self.used[i * n + output] < self.quota);
            let mut best: Option<(usize, usize, Candidate)> = None;
            let mut ties = 0u64;
            for &input in &requesters {
                if any_eligible && self.used[input * n + output] >= self.quota {
                    continue;
                }
                let (level, c) = cs
                    .best_level_for(input, output)
                    .expect("requester has a candidate");
                match &best {
                    None => {
                        best = Some((input, level, c));
                        ties = 1;
                    }
                    Some((_, _, b)) if c.priority > b.priority => {
                        best = Some((input, level, c));
                        ties = 1;
                    }
                    Some((_, _, b)) if c.priority == b.priority => {
                        ties += 1;
                        if rng.below(ties) == 0 {
                            best = Some((input, level, c));
                        }
                    }
                    _ => {}
                }
            }
            let (input, level, c) = best.expect("eligible pool is non-empty");
            out.add(Grant {
                input,
                output,
                vc: c.vc,
                level,
            });
            input_free[input] = false;
            self.used[input * n + output] += 1;
        }
        self.cycle_in_frame += 1;
        if self.cycle_in_frame == self.frame {
            self.cycle_in_frame = 0;
            self.used.fill(0);
        }
        debug_assert!(out.is_consistent_with(cs));
    }

    fn name(&self) -> &'static str {
        "Frame-fair (reference)"
    }

    fn reset(&mut self) {
        self.cycle_in_frame = 0;
        self.used.fill(0);
    }
}

/// Reference crosspoint-queued arbiter: the dense O(ports²) rescan form
/// of [`crate::cq::CrosspointQueuedArbiter`]'s incremental aging, with
/// the identical per-output longest-queue-first selection and reservoir
/// draws.
#[derive(Debug, Clone)]
pub struct ReferenceCq {
    ports: usize,
    cap: u32,
    depth: Vec<u32>,
}

impl ReferenceCq {
    /// Reference CQ arbiter for `ports` ports and `cap`-deep buffers.
    pub fn new(ports: usize, cap: u32) -> Self {
        assert!(ports > 0 && cap > 0);
        ReferenceCq {
            ports,
            cap,
            depth: vec![0; ports * ports],
        }
    }
}

impl SwitchScheduler for ReferenceCq {
    #[allow(clippy::needless_range_loop)] // port indices mirror the hardware
    fn schedule_into(&mut self, cs: &CandidateSet, rng: &mut SimRng, out: &mut Matching) {
        let n = self.ports;
        assert_eq!(cs.ports(), n);
        out.clear();
        // Phase 1 — dense aging: requested crosspoints gain pressure
        // (saturating), silent ones drain to zero.
        for input in 0..n {
            for output in 0..n {
                let d = &mut self.depth[input * n + output];
                if cs.requests(input, output) {
                    *d = (*d + 1).min(self.cap);
                } else {
                    *d = 0;
                }
            }
        }
        // Phase 2 — per-output longest-queue-first over free inputs.
        let mut input_free = vec![true; n];
        for output in 0..n {
            let mut best_input = usize::MAX;
            let mut best_depth = 0u32;
            let mut ties = 0u64;
            for input in 0..n {
                if !input_free[input] || !cs.requests(input, output) {
                    continue;
                }
                let d = self.depth[input * n + output];
                if best_input == usize::MAX || d > best_depth {
                    best_input = input;
                    best_depth = d;
                    ties = 1;
                } else if d == best_depth {
                    ties += 1;
                    if rng.below(ties) == 0 {
                        best_input = input;
                    }
                }
            }
            if best_input == usize::MAX {
                continue;
            }
            let (level, c) = cs
                .best_level_for(best_input, output)
                .expect("pool member has a candidate");
            out.add(Grant {
                input: best_input,
                output,
                vc: c.vc,
                level,
            });
            input_free[best_input] = false;
            self.depth[best_input * n + output] = 0;
        }
        debug_assert!(out.is_consistent_with(cs));
    }

    fn name(&self) -> &'static str {
        "CQ (reference)"
    }

    fn reset(&mut self) {
        self.depth.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::Priority;
    use crate::scheduler::ArbiterKind;

    #[test]
    fn references_instantiate_for_every_kind() {
        for kind in ArbiterKind::all() {
            let r = kind.instantiate_reference(4);
            assert!(r.name().ends_with("(reference)"), "{}", r.name());
        }
    }

    #[test]
    fn reference_coa_smoke() {
        let mut cs = CandidateSet::new(4, 2);
        cs.push(Candidate {
            input: 0,
            vc: 0,
            output: 2,
            priority: Priority::new(1.0),
        });
        cs.push(Candidate {
            input: 1,
            vc: 0,
            output: 2,
            priority: Priority::new(9.0),
        });
        let mut rng = SimRng::seed_from_u64(0);
        let m = ReferenceCoa::new(4).schedule(&cs, &mut rng);
        assert_eq!(m.size(), 1);
        assert_eq!(m.grant_for(1).unwrap().output, 2);
    }
}
