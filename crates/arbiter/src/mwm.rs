//! Maximum-weight matching (MWM) — the optimality-frontier oracle.
//!
//! The paper compares COA against heuristic rivals (WFA, iSLIP, PIM) but
//! never asks how close any of them get to the *optimal* matching.  The
//! linear-algebraic MWM→iSLIP tutorial (PAPERS.md) frames arbitration as
//! picking the service matrix `S` maximizing `⟨Q, S⟩` over permutation
//! matrices; this module implements that oracle in two forms:
//!
//! * **Exact** ([`MwmArbiter::new`]) — the Jonker–Volgenant shortest
//!   augmenting-path form of the Hungarian algorithm, O(n³) over a dense
//!   weight matrix, solved exactly up to [`EXACT_PORT_LIMIT`] ports.
//!   Beyond that the kernel falls back to the greedy bound below: an n³
//!   float sweep at 256 ports is an offline solver, not a per-cycle
//!   arbiter, and the oracle's conformance role only needs the paper's
//!   small switches.
//! * **Greedy ½-approximation** ([`MwmArbiter::approx`]) — sort all
//!   candidate edges by descending weight, take every conflict-free edge.
//!   The classic greedy-matching bound guarantees at least half the
//!   optimal weight; `tests/arbiter_properties.rs` re-checks both the
//!   exact kernel's optimality (against brute-force enumeration) and this
//!   bound on random candidate sets.
//!
//! ## Weight function
//!
//! The weight of edge `(input, output)` is derived from the priority of
//! the pair's best (lowest-level) candidate, normalized into `[0, 1]`
//! over the cycle's priority range and compressed below the size unit
//! (see [`edge_weight`]):
//!
//! ```text
//! w = 1 + q / (ports + 1),   q = (priority − min) / (max − min)
//! ```
//!
//! Every real edge weighs at least 1 and strictly less than
//! `1 + 1/ports`, so a matching with more edges *always* outweighs one
//! with fewer — the weight order is lexicographic **(matching size,
//! total normalized priority)**.  That is the frontier the practical
//! arbiters chase: maximal throughput first, best priority service
//! within it.  A plain `w = priority` objective would let one heavy edge
//! outweigh two light ones and starve throughput, which no arbiter in
//! the paper would accept.  Missing edges weigh 0 in the dense matrix;
//! every real edge outweighs them, so the maximum-weight *perfect*
//! matching over the completed matrix restricts to a maximum-weight
//! matching over the real edges.
//!
//! Both paths are fully deterministic (ties break toward the lowest
//! index) and consume **zero RNG draws**, which makes the oracle's RNG
//! stream trivially identical to its golden transcription
//! ([`crate::reference::ReferenceMwm`]).

use crate::candidate::{CandidateSet, MAX_PORTS};
use crate::matching::{Grant, Matching};
use crate::portset::{words_for_ports, PortSet};
use crate::scheduler::{KernelProbe, KernelStats, SwitchScheduler};
use mmr_sim::rng::SimRng;

/// Largest port count the exact oracle solves with the Hungarian
/// algorithm; larger switches silently use the greedy ½-approximation
/// (see the module docs for why).
pub const EXACT_PORT_LIMIT: usize = 64;

/// Weight every real edge carries before its normalized priority is
/// added (see [`edge_weight`]): the "one grant" size unit.
pub const EDGE_BASE: f64 = 1.0;

/// The minimum and maximum candidate priorities in `cs` — the
/// normalization range of [`edge_weight`].  `(0, 0)` for an empty set.
pub fn priority_bounds(cs: &CandidateSet) -> (f64, f64) {
    let mut floor = f64::INFINITY;
    let mut ceil = f64::NEG_INFINITY;
    for c in cs.iter() {
        floor = floor.min(c.priority.0);
        ceil = ceil.max(c.priority.0);
    }
    if floor.is_finite() {
        (floor, ceil)
    } else {
        (0.0, 0.0)
    }
}

/// `priority` normalized into `[0, 1]` over the bounds `(floor, ceil)`
/// and compressed under the size unit: `EDGE_BASE + q / (ports + 1)`.
/// This is the weight-function *definition*; the optimized kernel, the
/// golden reference and the property tests all call it so their f64
/// arithmetic is bit-identical.
#[inline]
pub fn shaped_weight(priority: f64, floor: f64, ceil: f64, ports: usize) -> f64 {
    let span = ceil - floor;
    let q = if span > 0.0 {
        (priority - floor) / span
    } else {
        0.0
    };
    EDGE_BASE + q / (ports + 1) as f64
}

/// The frontier weight of edge `(input, output)`: at least
/// [`EDGE_BASE`], strictly under `EDGE_BASE + 1/ports`, increasing in
/// the best candidate's priority — so total weight orders matchings
/// lexicographically by (size, priority).  `None` when no candidate
/// requests the pair.
pub fn edge_weight(cs: &CandidateSet, input: usize, output: usize) -> Option<f64> {
    let (floor, ceil) = priority_bounds(cs);
    cs.best_for(input, output)
        .map(|c| shaped_weight(c.priority.0, floor, ceil, cs.ports()))
}

/// Total frontier weight of matching `m` against `cs`: the sum of
/// [`edge_weight`] over the matched pairs.  Works for any arbiter's
/// matching, which is what lets the ablation compare COA's served weight
/// against the oracle's.
pub fn matching_weight(cs: &CandidateSet, m: &Matching) -> f64 {
    let (floor, ceil) = priority_bounds(cs);
    m.grants()
        .map(|g| {
            let c = cs
                .best_for(g.input, g.output)
                .expect("granted pair has a candidate");
            shaped_weight(c.priority.0, floor, ceil, cs.ports())
        })
        .sum()
}

/// Maximum-weight matching arbiter: exact Hungarian oracle or greedy
/// ½-approximation (see the module docs).
#[derive(Debug, Clone)]
pub struct MwmArbiter {
    ports: usize,
    words: usize,
    /// Exact oracle when true (still greedy past [`EXACT_PORT_LIMIT`]).
    exact: bool,
    /// Dense shifted weight matrix `w[input * ports + output]` (exact
    /// path only; empty otherwise).
    w: Vec<f64>,
    /// Hungarian scratch, `ports + 1` entries each — index 0 is the
    /// virtual root column of the augmenting-path search.
    pot_row: Vec<f64>,
    pot_col: Vec<f64>,
    col_to_row: Vec<usize>,
    way: Vec<usize>,
    minv: Vec<f64>,
    used: Vec<bool>,
    /// Greedy scratch: packed `(inverted weight key, input, output)`
    /// edges.  Starts empty and reaches its high-water mark during
    /// warm-up, like the Greedy kernel's sort buffer.
    keyed: Vec<u128>,
    probe: KernelProbe,
}

impl MwmArbiter {
    /// The exact MWM oracle for `ports` ports (greedy fallback past
    /// [`EXACT_PORT_LIMIT`]).
    pub fn new(ports: usize) -> Self {
        Self::with_mode(ports, true)
    }

    /// The greedy ½-approximate MWM at every width.
    pub fn approx(ports: usize) -> Self {
        Self::with_mode(ports, false)
    }

    fn with_mode(ports: usize, exact: bool) -> Self {
        assert!(
            ports > 0 && ports <= MAX_PORTS,
            "ports must be in 1..={MAX_PORTS}"
        );
        let hungarian = exact && ports <= EXACT_PORT_LIMIT;
        let n1 = if hungarian { ports + 1 } else { 0 };
        MwmArbiter {
            ports,
            words: words_for_ports(ports),
            exact,
            w: vec![0.0; if hungarian { ports * ports } else { 0 }],
            pot_row: vec![0.0; n1],
            pot_col: vec![0.0; n1],
            col_to_row: vec![0; n1],
            way: vec![0; n1],
            minv: vec![0.0; n1],
            used: vec![false; n1],
            keyed: Vec::new(),
            probe: KernelProbe::default(),
        }
    }

    /// True when this instance runs the Hungarian solver (exact mode at
    /// a port count within [`EXACT_PORT_LIMIT`]).
    pub fn solves_exact(&self) -> bool {
        self.exact && self.ports <= EXACT_PORT_LIMIT
    }

    /// Exact path.  Only instantiated single-word: [`EXACT_PORT_LIMIT`]
    /// is 64, so `words == 1` whenever the solver runs.
    fn run_exact(&mut self, cs: &CandidateSet, out: &mut Matching) {
        let n = self.ports;
        out.clear();
        // Build the dense weight matrix: best-candidate priority per
        // requested (input, output) pair.
        self.w.fill(0.0);
        let mut floor = f64::INFINITY;
        let mut ceil = f64::NEG_INFINITY;
        let mut edges = 0u64;
        for input in 0..n {
            let mut outs = PortSet::<1>::from_words(cs.output_mask(input));
            while let Some(output) = outs.take_lowest() {
                let c = cs
                    .best_for(input, output)
                    .expect("masked edge has a candidate");
                self.w[input * n + output] = c.priority.0;
                floor = floor.min(c.priority.0);
                ceil = ceil.max(c.priority.0);
                edges += 1;
            }
        }
        if edges == 0 {
            self.probe.matched(0);
            return;
        }
        // Shape real edges into [EDGE_BASE, EDGE_BASE + 1/(n+1)];
        // missing edges stay 0.
        let mut maxw = 0.0f64;
        for input in 0..n {
            let mut outs = PortSet::<1>::from_words(cs.output_mask(input));
            while let Some(output) = outs.take_lowest() {
                let cell = &mut self.w[input * n + output];
                *cell = shaped_weight(*cell, floor, ceil, n);
                maxw = maxw.max(*cell);
            }
        }
        // Jonker–Volgenant shortest augmenting paths over the minimized
        // cost `maxw − w` (non-negative).  1-indexed rows (inputs) and
        // columns (outputs); column 0 is the virtual root.  Ties in the
        // Dijkstra scan break toward the lowest column, so the solver is
        // deterministic and draw-free.
        self.pot_row.fill(0.0);
        self.pot_col.fill(0.0);
        self.col_to_row.fill(0);
        for row in 1..=n {
            self.col_to_row[0] = row;
            let mut j0 = 0usize;
            self.minv.fill(f64::INFINITY);
            self.used.fill(false);
            loop {
                self.used[j0] = true;
                let i0 = self.col_to_row[j0];
                let mut delta = f64::INFINITY;
                let mut j1 = 0usize;
                for j in 1..=n {
                    if self.used[j] {
                        continue;
                    }
                    let cost = maxw - self.w[(i0 - 1) * n + (j - 1)];
                    let cur = cost - self.pot_row[i0] - self.pot_col[j];
                    if cur < self.minv[j] {
                        self.minv[j] = cur;
                        self.way[j] = j0;
                    }
                    if self.minv[j] < delta {
                        delta = self.minv[j];
                        j1 = j;
                    }
                }
                for j in 0..=n {
                    if self.used[j] {
                        self.pot_row[self.col_to_row[j]] += delta;
                        self.pot_col[j] -= delta;
                    } else {
                        self.minv[j] -= delta;
                    }
                }
                j0 = j1;
                if self.col_to_row[j0] == 0 {
                    break;
                }
            }
            // Augment along the recorded alternating path.
            loop {
                let j1 = self.way[j0];
                self.col_to_row[j0] = self.col_to_row[j1];
                j0 = j1;
                if j0 == 0 {
                    break;
                }
            }
        }
        // Emit grants for the real edges of the perfect matching; pairs
        // assigned through a 0-weight dummy cell stay unmatched.
        for output in 0..n {
            let row = self.col_to_row[output + 1];
            debug_assert!(row != 0, "perfect matching covers every column");
            let input = row - 1;
            if self.w[input * n + output] > 0.0 {
                let (level, c) = cs
                    .best_level_for(input, output)
                    .expect("matched edge has a candidate");
                out.add(Grant {
                    input,
                    output,
                    vc: c.vc,
                    level,
                });
            }
        }
        self.probe.iterations(n as u64);
        self.probe.examined(edges);
        self.probe.matched(out.size() as u64);
        debug_assert!(out.is_consistent_with(cs));
    }

    fn run_greedy<const W: usize>(&mut self, cs: &CandidateSet, out: &mut Matching) {
        let n = self.ports;
        out.clear();
        // Pack every edge as (inverted priority key, input, output): an
        // ascending sort yields descending weight with ascending
        // (input, output) tie order — bit-identical to the reference's
        // comparator sort, since the shift in `edge_weight` preserves
        // the raw priority order.
        self.keyed.clear();
        for input in 0..n {
            let mut outs = PortSet::<W>::from_words(cs.output_mask(input));
            while let Some(output) = outs.take_lowest() {
                let c = cs
                    .best_for(input, output)
                    .expect("masked edge has a candidate");
                let key = ((!c.priority.sort_key() as u128) << 64)
                    | ((input as u128) << 32)
                    | output as u128;
                self.keyed.push(key);
            }
        }
        self.keyed.sort_unstable();
        let mut free_in = PortSet::<W>::full(n);
        let mut free_out = PortSet::<W>::full(n);
        let examined = self.keyed.len() as u64;
        for &key in &self.keyed {
            let input = ((key >> 32) & 0xffff_ffff) as usize;
            let output = (key & 0xffff_ffff) as usize;
            if free_in.contains(input) && free_out.contains(output) {
                let (level, c) = cs
                    .best_level_for(input, output)
                    .expect("keyed edge has a candidate");
                out.add(Grant {
                    input,
                    output,
                    vc: c.vc,
                    level,
                });
                free_in.remove(input);
                free_out.remove(output);
            }
        }
        self.probe.iterations(1);
        self.probe.examined(examined);
        self.probe.matched(out.size() as u64);
        debug_assert!(out.is_consistent_with(cs));
    }
}

impl SwitchScheduler for MwmArbiter {
    fn schedule_into(&mut self, cs: &CandidateSet, _rng: &mut SimRng, out: &mut Matching) {
        assert_eq!(cs.ports(), self.ports);
        if self.solves_exact() {
            debug_assert_eq!(self.words, 1, "exact limit fits one word");
            self.run_exact(cs, out);
        } else {
            match self.words {
                1 => self.run_greedy::<1>(cs, out),
                2 => self.run_greedy::<2>(cs, out),
                _ => self.run_greedy::<4>(cs, out),
            }
        }
    }

    fn name(&self) -> &'static str {
        if self.exact {
            "MWM"
        } else {
            "MWM-approx"
        }
    }

    fn set_probe_enabled(&mut self, enabled: bool) {
        self.probe.set_enabled(enabled);
    }

    fn kernel_stats(&self) -> KernelStats {
        self.probe.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{Candidate, Priority};

    fn cand(input: usize, vc: usize, output: usize, p: f64) -> Candidate {
        Candidate {
            input,
            vc,
            output,
            priority: Priority::new(p),
        }
    }

    fn rng() -> SimRng {
        SimRng::seed_from_u64(7)
    }

    /// The classic greedy-trap instance: the heaviest edge blocks two
    /// edges that together outweigh it.
    fn greedy_trap() -> CandidateSet {
        let mut cs = CandidateSet::new(2, 2);
        cs.set_input(0, &[cand(0, 0, 0, 10.0), cand(0, 1, 1, 9.0)]);
        cs.set_input(1, &[cand(1, 0, 0, 9.0)]);
        cs
    }

    #[test]
    fn exact_beats_greedy_on_the_trap_instance() {
        let cs = greedy_trap();
        let exact = MwmArbiter::new(2).schedule(&cs, &mut rng());
        let greedy = MwmArbiter::approx(2).schedule(&cs, &mut rng());
        assert_eq!(exact.size(), 2, "exact takes both light edges");
        assert_eq!(greedy.size(), 1, "greedy is trapped by the heavy edge");
        let we = matching_weight(&cs, &exact);
        let wg = matching_weight(&cs, &greedy);
        assert!(we > wg, "exact {we} must outweigh greedy {wg}");
        assert!(wg * 2.0 >= we, "greedy keeps the 1/2 bound");
    }

    #[test]
    fn permutation_fully_matched_at_every_width() {
        for ports in [4usize, 64, 100, 256] {
            for exact in [true, false] {
                let mut cs = CandidateSet::new(ports, 1);
                for i in 0..ports {
                    cs.push(cand(i, 0, (i + 1) % ports, 1.0 + i as f64));
                }
                let mut arb = if exact {
                    MwmArbiter::new(ports)
                } else {
                    MwmArbiter::approx(ports)
                };
                let m = arb.schedule(&cs, &mut rng());
                assert_eq!(m.size(), ports, "ports = {ports}, exact = {exact}");
            }
        }
    }

    #[test]
    fn exact_falls_back_to_greedy_past_the_port_limit() {
        assert!(MwmArbiter::new(EXACT_PORT_LIMIT).solves_exact());
        assert!(!MwmArbiter::new(EXACT_PORT_LIMIT + 1).solves_exact());
        assert!(!MwmArbiter::approx(4).solves_exact());
    }

    #[test]
    fn oracle_consumes_no_rng_draws() {
        let cs = greedy_trap();
        for mut arb in [MwmArbiter::new(2), MwmArbiter::approx(2)] {
            let mut r = rng();
            arb.schedule(&cs, &mut r);
            assert_eq!(
                r.next_u64_raw(),
                rng().next_u64_raw(),
                "{} touched the RNG stream",
                arb.name()
            );
        }
    }

    #[test]
    fn empty_set_yields_empty_matching() {
        let cs = CandidateSet::new(8, 2);
        for mut arb in [MwmArbiter::new(8), MwmArbiter::approx(8)] {
            let m = arb.schedule(&cs, &mut rng());
            assert_eq!(m.size(), 0);
        }
    }

    #[test]
    fn edge_weight_orders_by_size_then_priority() {
        let mut cs = CandidateSet::new(4, 2);
        cs.set_input(0, &[cand(0, 0, 1, -3.0), cand(0, 1, 2, -5.0)]);
        assert_eq!(priority_bounds(&cs), (-5.0, -3.0));
        // Lowest priority maps to the size unit, highest to the top of
        // the compressed band — always under EDGE_BASE + 1/ports, so no
        // single edge can outweigh two.
        assert_eq!(edge_weight(&cs, 0, 2), Some(EDGE_BASE));
        assert_eq!(edge_weight(&cs, 0, 1), Some(EDGE_BASE + 1.0 / 5.0));
        assert_eq!(edge_weight(&cs, 1, 1), None);
    }

    #[test]
    fn exact_matches_are_never_lighter_than_greedy_ones() {
        // Random smoke across widths inside the exact limit; the full
        // brute-force optimality property lives in
        // tests/arbiter_properties.rs.
        let mut r = SimRng::seed_from_u64(42);
        for ports in [4usize, 8, 16] {
            for _ in 0..20 {
                let mut cs = CandidateSet::new(ports, 3);
                for input in 0..ports {
                    let mut cands = Vec::new();
                    for level in 0..3 {
                        if r.below(3) == 0 {
                            continue;
                        }
                        let output = r.index(ports);
                        let p = 1000.0 - (level as f64) * 100.0 - r.index(50) as f64;
                        cands.push(cand(input, level, output, p));
                    }
                    cs.set_input(input, &cands);
                }
                let exact = MwmArbiter::new(ports).schedule(&cs, &mut rng());
                let greedy = MwmArbiter::approx(ports).schedule(&cs, &mut rng());
                let we = matching_weight(&cs, &exact);
                let wg = matching_weight(&cs, &greedy);
                assert!(we >= wg - 1e-9, "exact {we} < greedy {wg} at {ports} ports");
                assert!(wg * 2.0 >= we - 1e-9, "1/2 bound broken at {ports} ports");
            }
        }
    }
}
