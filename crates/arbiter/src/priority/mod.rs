//! Biased-priority functions for link scheduling (paper §3.1).
//!
//! The key idea: a head flit's priority combines the QoS its connection
//! *requested* (bandwidth reservation) with the QoS it is *receiving*
//! (queuing delay), so priorities grow as service falls behind, and grow
//! faster for bandwidth-hungry connections.
//!
//! * [`Iabp`] — Inter-Arrival Based Priority: `delay / IAT`.  The
//!   theoretical original; needs a divider per virtual channel, which is
//!   why the paper calls it impractical.
//! * [`Siabp`] — Simple IABP: priority starts at the connection's reserved
//!   slots per round and is *shifted left* every time the queuing-delay
//!   counter sets a new most-significant bit.  A shifter plus some
//!   combinational logic — the function the MMR actually uses.
//! * [`Fifo`] — oldest-first, QoS-blind.
//! * [`StaticPriority`] — reservation only, delay-blind.

use crate::candidate::Priority;
use serde::{Deserialize, Serialize};

/// A link-scheduling priority function.
pub trait LinkPriority: Send {
    /// Priority of a head flit given its connection's `reserved_slots`
    /// (slots per round), the connection's flit inter-arrival time
    /// `iat_rc` (router cycles), and the flit's queuing delay `waited_rc`
    /// (router cycles).
    fn priority(&self, reserved_slots: u64, iat_rc: f64, waited_rc: u64) -> Priority;

    /// Human-readable name.
    fn name(&self) -> &'static str;
}

/// Number of bits set-so-far in the delay counter: how many times SIABP
/// has doubled the initial priority.
#[inline]
fn delay_shifts(waited_rc: u64) -> u32 {
    64 - waited_rc.leading_zeros()
}

/// Maximum total bit width of a SIABP priority; keeps values exactly
/// representable in the `f64` carried by [`Priority`].
const SIABP_MAX_BITS: u32 = 52;

/// Simple Inter-Arrival Based Priority (§3.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct Siabp;

impl LinkPriority for Siabp {
    fn priority(&self, reserved_slots: u64, _iat_rc: f64, waited_rc: u64) -> Priority {
        // Initial value: reserved slots per round (an integer, unlike the
        // IAT).  Each time the delay counter sets a bit for the first
        // time, the priority shifts left one position.  The priority
        // register saturates at 2^52 (keeping values exact in the f64
        // carried by `Priority`); saturating the *value* rather than the
        // shift count preserves monotonicity in both the reservation and
        // the delay right up to the cap.
        let slots = reserved_slots.max(1);
        let shift = delay_shifts(waited_rc);
        let cap = (1u64 << SIABP_MAX_BITS) as f64;
        Priority::new((slots as f64 * (shift as f64).exp2()).min(cap))
    }

    fn name(&self) -> &'static str {
        "SIABP"
    }
}

/// Inter-Arrival Based Priority: `queuing delay / IAT`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Iabp;

impl LinkPriority for Iabp {
    fn priority(&self, _reserved_slots: u64, iat_rc: f64, waited_rc: u64) -> Priority {
        debug_assert!(iat_rc > 0.0);
        Priority::new(waited_rc as f64 / iat_rc)
    }

    fn name(&self) -> &'static str {
        "IABP"
    }
}

/// Oldest-first (queuing delay only) — ignores QoS requirements.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl LinkPriority for Fifo {
    fn priority(&self, _reserved_slots: u64, _iat_rc: f64, waited_rc: u64) -> Priority {
        Priority::new(waited_rc as f64)
    }

    fn name(&self) -> &'static str {
        "FIFO"
    }
}

/// Reservation-only priority — ignores received QoS.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticPriority;

impl LinkPriority for StaticPriority {
    fn priority(&self, reserved_slots: u64, _iat_rc: f64, _waited_rc: u64) -> Priority {
        Priority::new(reserved_slots as f64)
    }

    fn name(&self) -> &'static str {
        "Static"
    }
}

/// Serializable priority-function selector for experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PriorityKind {
    /// Shift-based SIABP (default; what the MMR implements).
    Siabp,
    /// Division-based IABP.
    Iabp,
    /// Oldest-first.
    Fifo,
    /// Reservation-only.
    Static,
}

impl PriorityKind {
    /// Instantiate the function.
    pub fn instantiate(self) -> Box<dyn LinkPriority> {
        match self {
            PriorityKind::Siabp => Box::new(Siabp),
            PriorityKind::Iabp => Box::new(Iabp),
            PriorityKind::Fifo => Box::new(Fifo),
            PriorityKind::Static => Box::new(StaticPriority),
        }
    }

    /// Short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            PriorityKind::Siabp => "SIABP",
            PriorityKind::Iabp => "IABP",
            PriorityKind::Fifo => "FIFO",
            PriorityKind::Static => "Static",
        }
    }

    /// All selectable functions.
    pub fn all() -> Vec<PriorityKind> {
        vec![
            PriorityKind::Siabp,
            PriorityKind::Iabp,
            PriorityKind::Fifo,
            PriorityKind::Static,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn siabp_initial_value_is_reservation() {
        let p = Siabp.priority(727, 1443.0, 0);
        assert_eq!(p.0, 727.0);
        let q = Siabp.priority(1, 1e6, 0);
        assert_eq!(q.0, 1.0);
    }

    #[test]
    fn siabp_doubles_on_each_new_delay_bit() {
        // delay 1 sets bit 0 -> one shift; delay 2..3 -> two shifts; etc.
        assert_eq!(Siabp.priority(10, 1.0, 1).0, 20.0);
        assert_eq!(Siabp.priority(10, 1.0, 2).0, 40.0);
        assert_eq!(Siabp.priority(10, 1.0, 3).0, 40.0);
        assert_eq!(Siabp.priority(10, 1.0, 4).0, 80.0);
        assert_eq!(Siabp.priority(10, 1.0, 1023).0, 10.0 * 1024.0);
    }

    #[test]
    fn siabp_monotone_in_delay() {
        let mut last = 0.0;
        for d in 0..1_000_000u64 {
            let p = Siabp.priority(21, 1.0, d).0;
            assert!(p >= last, "delay {d}: {p} < {last}");
            last = p;
        }
    }

    #[test]
    fn siabp_high_bandwidth_grows_faster() {
        // Same delay, larger reservation -> strictly larger priority.
        for d in [0u64, 5, 100, 10_000] {
            let hi = Siabp.priority(727, 1.0, d).0;
            let lo = Siabp.priority(1, 1.0, d).0;
            assert!(hi > lo);
        }
    }

    #[test]
    fn siabp_shift_saturates_safely() {
        // Huge delays must not overflow or lose exactness.
        let p = Siabp.priority(16_384, 1.0, u64::MAX).0;
        assert!(p.is_finite());
        assert!(p <= (1u64 << 52) as f64);
        assert_eq!(p as u64 as f64, p, "priority must stay an exact integer");
    }

    #[test]
    fn iabp_is_delay_over_iat() {
        let p = Iabp.priority(0, 500.0, 1000);
        assert_eq!(p.0, 2.0);
        assert_eq!(Iabp.priority(0, 500.0, 0).0, 0.0);
    }

    #[test]
    fn iabp_orders_like_bandwidth_at_equal_delay() {
        // Higher-bandwidth connection (smaller IAT) outranks at the same
        // queuing delay — the biasing rationale of §3.1.
        let hi = Iabp.priority(0, 1443.0, 10_000); // 55 Mbps
        let lo = Iabp.priority(0, 1_290_000.0, 10_000); // 64 Kbps
        assert!(hi > lo);
    }

    #[test]
    fn siabp_approximates_iabp_ordering() {
        // For two connections at the same delay, SIABP and IABP must agree
        // on who ranks first (slots ∝ bandwidth ∝ 1/IAT).
        let cases = [(727u64, 1443.0), (21, 53_000.0), (1, 1_290_000.0)];
        for (i, &(sa, ia)) in cases.iter().enumerate() {
            for &(sb, ib) in &cases[i + 1..] {
                // d = 0 excluded: IABP collapses to 0 there while SIABP
                // already reflects the reservation.
                for d in [64u64, 100, 65_536, 1 << 22] {
                    let s_ord = Siabp.priority(sa, ia, d).cmp(&Siabp.priority(sb, ib, d));
                    let i_ord = Iabp.priority(sa, ia, d).cmp(&Iabp.priority(sb, ib, d));
                    assert_eq!(s_ord, i_ord, "slots ({sa},{sb}) delay {d}");
                }
            }
        }
    }

    #[test]
    fn fifo_ignores_reservation() {
        assert_eq!(Fifo.priority(727, 1.0, 99), Fifo.priority(1, 9e9, 99));
        assert!(Fifo.priority(1, 1.0, 100) > Fifo.priority(727, 1.0, 99));
    }

    #[test]
    fn static_ignores_delay() {
        assert_eq!(
            StaticPriority.priority(5, 1.0, 0),
            StaticPriority.priority(5, 1.0, 1 << 40)
        );
    }

    #[test]
    fn kinds_instantiate_with_matching_labels() {
        for kind in PriorityKind::all() {
            let f = kind.instantiate();
            assert_eq!(f.name(), kind.label());
        }
    }
}
