//! Matchings: the output of a switch scheduler.
//!
//! A matching is conflict-free by construction of the [`Matching`] type:
//! inserting a grant for an already-used input or output panics in debug
//! builds and is rejected in release builds, so no scheduler can smuggle a
//! conflicting grant into the crossbar.

use crate::candidate::CandidateSet;
use crate::portset::words_for_ports;
use serde::{Deserialize, Serialize};

/// One granted input→output connection for the coming flit cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grant {
    /// Granted input port.
    pub input: usize,
    /// Granted output port.
    pub output: usize,
    /// Virtual channel whose head flit crosses.
    pub vc: usize,
    /// Candidate level (0-based) the grant was taken from.
    pub level: usize,
}

/// A conflict-free set of grants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matching {
    by_input: Vec<Option<Grant>>,
    /// Used-output bitmask, one bit per port (1, 2 or 4 words — the same
    /// width selection as the kernels' port sets).
    output_used: Vec<u64>,
    size: usize,
}

impl Matching {
    /// An empty matching for a router with `ports` ports.
    pub fn new(ports: usize) -> Self {
        Matching {
            by_input: vec![None; ports],
            output_used: vec![0; words_for_ports(ports.max(1))],
            size: 0,
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.by_input.len()
    }

    /// Remove all grants, keeping the allocation for reuse across cycles.
    pub fn clear(&mut self) {
        self.by_input.fill(None);
        self.output_used.fill(0);
        self.size = 0;
    }

    /// Try to add a grant; returns false (and changes nothing) if its
    /// input or output is already matched.
    pub fn add(&mut self, grant: Grant) -> bool {
        let bit = 1u64 << (grant.output & 63);
        if self.by_input[grant.input].is_some() || self.output_used[grant.output >> 6] & bit != 0 {
            debug_assert!(false, "scheduler produced a conflicting grant: {grant:?}");
            return false;
        }
        self.by_input[grant.input] = Some(grant);
        self.output_used[grant.output >> 6] |= bit;
        self.size += 1;
        true
    }

    /// The grant for `input`, if any.
    #[inline]
    pub fn grant_for(&self, input: usize) -> Option<Grant> {
        self.by_input[input]
    }

    /// True if `input` is matched.
    #[inline]
    pub fn input_matched(&self, input: usize) -> bool {
        self.by_input[input].is_some()
    }

    /// True if `output` is matched.
    #[inline]
    pub fn output_matched(&self, output: usize) -> bool {
        self.output_used[output >> 6] & (1u64 << (output & 63)) != 0
    }

    /// Number of grants (matching cardinality).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Iterate over grants in input order.
    pub fn grants(&self) -> impl Iterator<Item = Grant> + '_ {
        self.by_input.iter().flatten().copied()
    }

    /// Crossbar utilization this cycle: grants / ports.
    pub fn utilization(&self) -> f64 {
        self.size as f64 / self.by_input.len() as f64
    }

    /// Validate the matching against the candidate set it was computed
    /// from: every grant must correspond to an actual candidate.  Used by
    /// tests and debug assertions.
    pub fn is_consistent_with(&self, cs: &CandidateSet) -> bool {
        self.grants().all(|g| {
            cs.get(g.input, g.level)
                .is_some_and(|c| c.output == g.output && c.vc == g.vc && c.input == g.input)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{Candidate, Priority};

    fn grant(input: usize, output: usize) -> Grant {
        Grant {
            input,
            output,
            vc: 0,
            level: 0,
        }
    }

    #[test]
    fn add_and_query() {
        let mut m = Matching::new(4);
        assert!(m.add(grant(0, 2)));
        assert!(m.input_matched(0));
        assert!(m.output_matched(2));
        assert!(!m.input_matched(1));
        assert_eq!(m.size(), 1);
        assert_eq!(m.grant_for(0).unwrap().output, 2);
        assert_eq!(m.utilization(), 0.25);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "conflicting grant"))]
    fn conflicting_input_rejected() {
        let mut m = Matching::new(4);
        m.add(grant(0, 2));
        let accepted = m.add(grant(0, 3));
        // In release builds (debug_assertions off) we reach here.
        assert!(!accepted);
        assert_eq!(m.size(), 1);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "conflicting grant"))]
    fn conflicting_output_rejected() {
        let mut m = Matching::new(4);
        m.add(grant(0, 2));
        let accepted = m.add(grant(1, 2));
        assert!(!accepted);
        assert_eq!(m.size(), 1);
    }

    #[test]
    fn multi_word_output_tracking() {
        let mut m = Matching::new(200);
        assert!(m.add(grant(0, 190)));
        assert!(m.add(grant(150, 63)));
        assert!(m.output_matched(190));
        assert!(m.output_matched(63));
        assert!(!m.output_matched(64));
        assert!(m.input_matched(150));
        assert_eq!(m.size(), 2);
        m.clear();
        assert!(!m.output_matched(190));
        assert_eq!(m.size(), 0);
    }

    #[test]
    fn full_matching_utilization_one() {
        let mut m = Matching::new(3);
        for i in 0..3 {
            m.add(grant(i, (i + 1) % 3));
        }
        assert_eq!(m.size(), 3);
        assert_eq!(m.utilization(), 1.0);
        assert_eq!(m.grants().count(), 3);
    }

    #[test]
    fn consistency_check() {
        let mut cs = CandidateSet::new(2, 2);
        cs.push(Candidate {
            input: 0,
            vc: 7,
            output: 1,
            priority: Priority::new(5.0),
        });
        let mut good = Matching::new(2);
        good.add(Grant {
            input: 0,
            output: 1,
            vc: 7,
            level: 0,
        });
        assert!(good.is_consistent_with(&cs));
        let mut bad = Matching::new(2);
        bad.add(Grant {
            input: 0,
            output: 1,
            vc: 3,
            level: 0,
        }); // wrong vc
        assert!(!bad.is_consistent_with(&cs));
        let mut phantom = Matching::new(2);
        phantom.add(Grant {
            input: 1,
            output: 0,
            vc: 0,
            level: 0,
        }); // no candidate
        assert!(!phantom.is_consistent_with(&cs));
    }
}
