//! Property-based tests for the statistics substrate.

use mmr_sim::rng::SimRng;
use mmr_sim::stats::{LogHistogram, Running, WindowedSeries};
use proptest::prelude::*;

proptest! {
    #[test]
    fn running_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!((r.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((r.variance() - var).abs() <= 1e-4 * (1.0 + var.abs()));
        prop_assert_eq!(r.count(), xs.len() as u64);
        prop_assert_eq!(r.min().unwrap(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(r.max().unwrap(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn running_merge_any_split(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let mut whole = Running::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Running::new();
        let mut b = Running::new();
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-6 * (1.0 + whole.variance()));
    }

    #[test]
    fn histogram_mean_exact_and_quantiles_monotone(
        xs in proptest::collection::vec(0u64..1_000_000_000, 1..300),
    ) {
        let mut h = LogHistogram::new(3);
        for &x in &xs {
            h.record(x);
        }
        let exact_mean = xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64;
        prop_assert!((h.mean() - exact_mean).abs() < 1e-6 * (1.0 + exact_mean));
        prop_assert_eq!(h.max(), *xs.iter().max().unwrap());
        let mut last = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= last, "quantile({q}) = {v} < previous {last}");
            last = v;
        }
        prop_assert_eq!(h.quantile(1.0).unwrap(), h.max());
    }

    #[test]
    fn histogram_quantile_relative_error_bounded(
        xs in proptest::collection::vec(1u64..1_000_000_000, 50..300),
        q in 0.05f64..0.95,
    ) {
        let mut h = LogHistogram::new(3);
        for &x in &xs {
            h.record(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        let exact = sorted[idx] as f64;
        let approx = h.quantile(q).unwrap() as f64;
        // Bucket relative error is <= 12.5%; allow an extra bucket of slack
        // for ties at the boundary.
        prop_assert!(
            (approx - exact).abs() <= 0.27 * exact + 2.0,
            "q={q}: approx {approx} exact {exact}"
        );
    }

    #[test]
    fn histogram_merge_equals_single_pass(
        xs in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        ys in proptest::collection::vec(0u64..1_000_000_000, 1..200),
    ) {
        let mut whole = LogHistogram::new(3);
        let mut a = LogHistogram::new(3);
        let mut b = LogHistogram::new(3);
        for &x in &xs {
            whole.record(x);
            a.record(x);
        }
        for &y in &ys {
            whole.record(y);
            b.record(y);
        }
        a.merge(&b);
        prop_assert_eq!(&a, &whole, "merge must equal single-pass recording");
    }

    #[test]
    fn histogram_quantile_bounds_bracket_the_order_statistic(
        xs in proptest::collection::vec(0u64..1_000_000_000, 1..300),
        q in 0.0f64..1.0,
    ) {
        let mut h = LogHistogram::new(3);
        for &x in &xs {
            h.record(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        let exact = sorted[idx];
        let (lo, hi) = h.quantile_bounds(q).unwrap();
        prop_assert!(
            lo <= exact && exact <= hi,
            "q={q}: order statistic {exact} outside bucket [{lo}, {hi}]"
        );
        let approx = h.quantile(q).unwrap();
        prop_assert!(lo <= approx && approx <= hi, "point estimate outside its own bounds");
    }

    #[test]
    fn histogram_record_n_equals_repeats(
        pairs in proptest::collection::vec((0u64..1_000_000, 0u64..50), 1..50),
    ) {
        let mut bulk = LogHistogram::new(3);
        let mut single = LogHistogram::new(3);
        for &(v, n) in &pairs {
            bulk.record_n(v, n);
            for _ in 0..n {
                single.record(v);
            }
        }
        prop_assert_eq!(&bulk, &single);
    }

    #[test]
    fn histogram_json_round_trip(
        xs in proptest::collection::vec(0u64..u64::MAX, 0..200),
    ) {
        let mut h = LogHistogram::new(3);
        for &x in &xs {
            h.record(x);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &h, "sparse JSON round-trip must be lossless");
    }

    #[test]
    fn histogram_nonzero_buckets_account_everything(
        xs in proptest::collection::vec(0u64..u64::MAX, 1..300),
    ) {
        let mut h = LogHistogram::new(3);
        for &x in &xs {
            h.record(x);
        }
        let mut total = 0u64;
        for b in h.nonzero_buckets() {
            prop_assert!(b.count > 0);
            prop_assert!(b.lo <= b.hi);
            let (lo, hi) = h.bucket_bounds(b.index);
            prop_assert_eq!((b.lo, b.hi), (lo, hi));
            total += b.count;
        }
        prop_assert_eq!(total, xs.len() as u64, "bucket counts must conserve mass");
        for &x in &xs {
            prop_assert!(
                h.nonzero_buckets().any(|b| b.lo <= x && x <= b.hi),
                "recorded value {x} falls in no non-empty bucket"
            );
        }
    }

    #[test]
    fn windowed_series_conserves_mass(
        samples in proptest::collection::vec((0u64..10_000, -100.0f64..100.0), 1..200),
        window in 1u64..500,
    ) {
        let mut s = WindowedSeries::new(window);
        let mut total = 0.0;
        for &(t, v) in &samples {
            s.record(t, v);
            total += v;
        }
        let summed: f64 = s.sums().iter().sum();
        prop_assert!((summed - total).abs() < 1e-9 * (1.0 + total.abs()));
        let max_t = samples.iter().map(|&(t, _)| t).max().unwrap();
        prop_assert_eq!(s.len(), (max_t / window) as usize + 1);
    }

    #[test]
    fn rng_below_uniformity(n in 1u64..100, seed in 0u64..1000) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn rng_split_streams_disagree(seed in 0u64..10_000, a in 0u64..64, b in 0u64..64) {
        prop_assume!(a != b);
        let root = SimRng::seed_from_u64(seed);
        let mut sa = root.split(a);
        let mut sb = root.split(b);
        let same = (0..32).filter(|_| sa.next_u64_raw() == sb.next_u64_raw()).count();
        prop_assert!(same <= 1, "streams {a} and {b} collided {same}/32 outputs");
    }
}
