//! Pre-allocated buffer for periodic windowed snapshots.
//!
//! Long runs emit one snapshot row per window (e.g. every 1000 flit
//! cycles).  To keep the armed hot path allocation-free the buffer is
//! sized once at construction; when full, further pushes are *counted*
//! rather than silently discarded, so a report can always say how much of
//! the run its windows cover.

/// A bounded, pre-allocated snapshot buffer.
#[derive(Debug, Clone)]
pub struct SnapshotRing<T> {
    buf: Vec<T>,
    capacity: usize,
    dropped: u64,
}

impl<T: Copy> SnapshotRing<T> {
    /// A buffer retaining up to `capacity` snapshots.
    pub fn with_capacity(capacity: usize) -> Self {
        SnapshotRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Append a snapshot.  Returns `false` (and counts the drop) once
    /// the buffer is full; never allocates.
    #[inline]
    pub fn push(&mut self, item: T) -> bool {
        if self.buf.len() < self.capacity {
            self.buf.push(item);
            true
        } else {
            self.dropped += 1;
            false
        }
    }

    /// Retained snapshots in push order.
    pub fn as_slice(&self) -> &[T] {
        &self.buf
    }

    /// Snapshots rejected because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum retained snapshots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Forget all snapshots (capacity is preserved).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_counts_drops() {
        let mut r = SnapshotRing::with_capacity(3);
        assert!(r.push(1u64));
        assert!(r.push(2));
        assert!(r.push(3));
        assert!(!r.push(4), "push past capacity must be rejected");
        assert!(!r.push(5));
        assert_eq!(r.as_slice(), &[1, 2, 3]);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn clear_preserves_capacity() {
        let mut r = SnapshotRing::with_capacity(2);
        r.push(7u32);
        r.push(8);
        r.push(9);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        assert!(r.push(1));
    }
}
