//! Per-stage cycle profiler.
//!
//! A [`StageProfiler`] owns a fixed set of named pipeline stages
//! registered at construction time.  Each cycle the model brackets every
//! stage with [`StageProfiler::begin`] / [`StageProfiler::end`],
//! accumulating three things per stage:
//!
//! * **calls** — how many times the stage ran;
//! * **work** — a caller-supplied logical work count (candidates
//!   examined, flits moved, credits returned …), meaningful regardless of
//!   the clock;
//! * **wall_ns** — wall time, measured through the injected [`Clock`];
//!   with the default [`NullClock`] this stays zero and the report is
//!   bit-deterministic.
//!
//! All storage is pre-sized; the begin/end path performs no allocation
//! and, when the profiler is disabled, reduces to a branch.

use super::Clock;
use serde::{Deserialize, Serialize};

/// Handle to a registered stage (a dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageId(u32);

impl StageId {
    /// The dense index of this stage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Accumulated figures for one stage, as reported.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSample {
    /// Stage name as registered.
    pub name: String,
    /// Times the stage executed.
    pub calls: u64,
    /// Logical work units accumulated across calls.
    pub work: u64,
    /// Wall nanoseconds accumulated across calls (zero under
    /// [`super::NullClock`]).
    pub wall_ns: u64,
}

/// Per-stage profiler with an injected clock.
pub struct StageProfiler {
    clock: Box<dyn Clock>,
    names: Vec<&'static str>,
    calls: Vec<u64>,
    work: Vec<u64>,
    wall_ns: Vec<u64>,
    enabled: bool,
}

impl std::fmt::Debug for StageProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageProfiler")
            .field("names", &self.names)
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl StageProfiler {
    /// An enabled profiler measuring time through `clock`.
    pub fn new(clock: Box<dyn Clock>) -> Self {
        StageProfiler {
            clock,
            names: Vec::new(),
            calls: Vec::new(),
            work: Vec::new(),
            wall_ns: Vec::new(),
            enabled: true,
        }
    }

    /// A disabled profiler: stages can be registered, begin/end are
    /// no-ops.
    pub fn disabled() -> Self {
        StageProfiler {
            enabled: false,
            ..StageProfiler::new(Box::new(super::NullClock))
        }
    }

    /// Register a stage.  Allocates — construction time only.
    pub fn stage(&mut self, name: &'static str) -> StageId {
        if let Some(i) = self.names.iter().position(|&n| n == name) {
            return StageId(i as u32);
        }
        self.names.push(name);
        self.calls.push(0);
        self.work.push(0);
        self.wall_ns.push(0);
        StageId((self.names.len() - 1) as u32)
    }

    /// Whether begin/end currently record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Timestamp marking the start of a stage (zero when disabled or
    /// under a [`super::NullClock`]).  Pass the value to [`end`].
    ///
    /// [`end`]: StageProfiler::end
    #[inline]
    pub fn begin(&self) -> u64 {
        if self.enabled {
            self.clock.now_ns()
        } else {
            0
        }
    }

    /// Close a stage opened at `started_ns`, crediting `work` logical
    /// units to it.
    #[inline]
    pub fn end(&mut self, stage: StageId, started_ns: u64, work: u64) {
        if !self.enabled {
            return;
        }
        let i = stage.0 as usize;
        self.calls[i] += 1;
        self.work[i] += work;
        self.wall_ns[i] += self.clock.now_ns().saturating_sub(started_ns);
    }

    /// Credit `n` idle executions to **every** registered stage at once:
    /// calls advance by `n`, work and wall time stay put.  Bit-identical
    /// to `n` begin/end brackets with zero work under the deterministic
    /// [`super::NullClock`]; used by the event-horizon engine to account
    /// skipped quiescent cycles in O(stages) instead of O(n).
    #[inline]
    pub fn add_idle_calls(&mut self, n: u64) {
        if !self.enabled {
            return;
        }
        for c in &mut self.calls {
            *c += n;
        }
    }

    /// Accumulated figures for one stage.
    pub fn calls(&self, stage: StageId) -> u64 {
        self.calls[stage.0 as usize]
    }

    /// Accumulated logical work for one stage.
    pub fn work(&self, stage: StageId) -> u64 {
        self.work[stage.0 as usize]
    }

    /// Accumulated wall nanoseconds for one stage.
    pub fn wall_ns(&self, stage: StageId) -> u64 {
        self.wall_ns[stage.0 as usize]
    }

    /// Zero every stage's figures.
    pub fn reset(&mut self) {
        self.calls.fill(0);
        self.work.fill(0);
        self.wall_ns.fill(0);
    }

    /// Iterate `(name, calls, work, wall_ns)` tuples in registration
    /// order without allocating — the exposition writer's path.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64, u64, u64)> + Clone + '_ {
        (0..self.names.len())
            .map(move |i| (self.names[i], self.calls[i], self.work[i], self.wall_ns[i]))
    }

    /// Snapshot every stage as owned, serializable samples in
    /// registration order.  Allocates — report-time only.
    pub fn samples(&self) -> Vec<StageSample> {
        let mut out = Vec::new();
        self.write_into(&mut out);
        out
    }

    /// Refill `out` with the current samples, reusing its capacity.
    pub fn write_into(&self, out: &mut Vec<StageSample>) {
        out.clear();
        out.extend(self.iter().map(|(name, calls, work, wall_ns)| StageSample {
            name: name.to_string(),
            calls,
            work,
            wall_ns,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::super::{MonotonicClock, NullClock};
    use super::*;

    #[test]
    fn records_calls_and_work() {
        let mut p = StageProfiler::new(Box::new(NullClock));
        let a = p.stage("arbitration");
        let b = p.stage("crossbar");
        for _ in 0..3 {
            let t = p.begin();
            p.end(a, t, 4);
        }
        let t = p.begin();
        p.end(b, t, 1);
        assert_eq!(p.calls(a), 3);
        assert_eq!(p.work(a), 12);
        assert_eq!(p.calls(b), 1);
        // NullClock: wall time is deterministic zero.
        assert_eq!(p.wall_ns(a), 0);
        let s = p.samples();
        assert_eq!(s[0].name, "arbitration");
        assert_eq!(s[0].work, 12);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = StageProfiler::disabled();
        let a = p.stage("x");
        let t = p.begin();
        p.end(a, t, 99);
        assert_eq!(p.calls(a), 0);
        assert_eq!(p.work(a), 0);
    }

    #[test]
    fn monotonic_clock_accumulates_time() {
        let mut p = StageProfiler::new(Box::new(MonotonicClock::new()));
        let a = p.stage("spin");
        let t = p.begin();
        // A small spin so elapsed time is measurable at ns resolution.
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        p.end(a, t, 1);
        assert!(p.wall_ns(a) > 0, "monotonic clock must measure the spin");
    }

    #[test]
    fn stage_registration_interns() {
        let mut p = StageProfiler::disabled();
        let a = p.stage("s");
        let b = p.stage("s");
        assert_eq!(a, b);
    }

    #[test]
    fn idle_calls_equal_zero_work_brackets() {
        let mut a = StageProfiler::new(Box::new(NullClock));
        let mut b = StageProfiler::new(Box::new(NullClock));
        for p in [&mut a, &mut b] {
            p.stage("x");
            p.stage("y");
        }
        let (x, y) = (StageId(0), StageId(1));
        for _ in 0..5 {
            for s in [x, y] {
                let t = a.begin();
                a.end(s, t, 0);
            }
        }
        b.add_idle_calls(5);
        for s in [x, y] {
            assert_eq!(a.calls(s), b.calls(s));
            assert_eq!(a.work(s), b.work(s));
            assert_eq!(a.wall_ns(s), b.wall_ns(s));
        }
        let mut d = StageProfiler::disabled();
        d.stage("x");
        d.add_idle_calls(9);
        assert_eq!(d.calls(StageId(0)), 0);
    }

    #[test]
    fn reset_zeroes() {
        let mut p = StageProfiler::new(Box::new(NullClock));
        let a = p.stage("s");
        let t = p.begin();
        p.end(a, t, 5);
        p.reset();
        assert_eq!(p.calls(a), 0);
        assert_eq!(p.work(a), 0);
    }
}
