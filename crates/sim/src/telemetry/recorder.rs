//! The arbitration flight recorder.
//!
//! A [`FlightRecorder`] keeps the last `capacity` [`TraceEvent`]s in a
//! pre-allocated ring: recording is a bounds-checked store plus two index
//! updates, with **zero steady-state allocation** — the ring is sized once
//! at construction.  Events are compact `Copy` records (a kind tag plus
//! three kind-specific `u32` payload fields), cheap enough to emit from
//! the router's hot path every cycle.
//!
//! Dumping renders the retained window as JSONL — one serde-serialized
//! event per line — either on demand ([`FlightRecorder::dump_jsonl`]) or
//! when a panic unwinds through [`run_with_dump_on_panic`], which writes
//! the dump to a file before resuming the unwind so assertion failures
//! leave a black box behind.

use serde::{Deserialize, Serialize};

/// What happened (the tag of a [`TraceEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// The switch scheduler granted `a` = input, `b` = output, `c` = VC.
    GrantIssued,
    /// Input `a`'s best candidate (VC `c`, wanting output `b`) received
    /// no grant this cycle.
    VcStalled,
    /// Connection `a` spent a credit forwarding a flit onto its link.
    CreditConsumed,
    /// A fault was detected; `a` encodes the detector (0 = ingress
    /// checksum, 1 = phantom-credit guard, 2 = credit watchdog resync).
    FaultDetected,
    /// Connection `a` was quarantined for violating its traffic contract.
    ConnectionQuarantined,
}

/// One fixed-size binary trace record.
///
/// The payload fields `a`/`b`/`c` are interpreted per [`TraceKind`]; the
/// named constructors document the packing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Flit cycle the event occurred in.
    pub cycle: u64,
    /// Event tag.
    pub kind: TraceKind,
    /// First payload field (see [`TraceKind`]).
    pub a: u32,
    /// Second payload field.
    pub b: u32,
    /// Third payload field.
    pub c: u32,
}

impl TraceEvent {
    /// A grant: `input` → `output` on virtual channel `vc`.
    pub fn grant(cycle: u64, input: usize, output: usize, vc: usize) -> Self {
        TraceEvent {
            cycle,
            kind: TraceKind::GrantIssued,
            a: input as u32,
            b: output as u32,
            c: vc as u32,
        }
    }

    /// A stalled candidate: `input`'s head VC `vc` wanted `output` but
    /// got no grant.
    pub fn vc_stalled(cycle: u64, input: usize, output: usize, vc: usize) -> Self {
        TraceEvent {
            cycle,
            kind: TraceKind::VcStalled,
            a: input as u32,
            b: output as u32,
            c: vc as u32,
        }
    }

    /// Connection `conn` consumed a credit.
    pub fn credit_consumed(cycle: u64, conn: usize) -> Self {
        TraceEvent {
            cycle,
            kind: TraceKind::CreditConsumed,
            a: conn as u32,
            b: 0,
            c: 0,
        }
    }

    /// A detected fault; `detector` encodes which defense caught it.
    pub fn fault_detected(cycle: u64, detector: u32) -> Self {
        TraceEvent {
            cycle,
            kind: TraceKind::FaultDetected,
            a: detector,
            b: 0,
            c: 0,
        }
    }

    /// Connection `conn` quarantined.
    pub fn quarantined(cycle: u64, conn: usize) -> Self {
        TraceEvent {
            cycle,
            kind: TraceKind::ConnectionQuarantined,
            a: conn as u32,
            b: 0,
            c: 0,
        }
    }
}

/// Fixed-capacity ring of [`TraceEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Vec<TraceEvent>,
    capacity: usize,
    /// Next slot to overwrite once the ring is full.
    next: usize,
    /// Total events ever recorded (including overwritten ones).
    recorded: u64,
    enabled: bool,
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` events
    /// (`capacity == 0` disables recording).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            recorded: 0,
            enabled: capacity > 0,
        }
    }

    /// A disabled recorder that drops everything.
    pub fn disabled() -> Self {
        FlightRecorder::new(0)
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event.  O(1); never allocates (the ring was sized at
    /// construction) and does nothing when disabled.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.next] = ev;
            self.next = (self.next + 1) % self.capacity;
        }
        self.recorded += 1;
    }

    /// Events retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        let (wrapped, head) = self.ring.split_at(self.next.min(self.ring.len()));
        head.iter().chain(wrapped.iter()).copied()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded, including those overwritten.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to overwriting.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.ring.len() as u64
    }

    /// Forget all retained events (the ring stays allocated).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.next = 0;
        self.recorded = 0;
    }

    /// Render the retained window as JSONL, one event per line, oldest
    /// first.  Allocates — dump-time only.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str(&serde_json::to_string(&ev).expect("trace events serialize"));
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL dump back into events (the inverse of
    /// [`dump_jsonl`]).
    ///
    /// [`dump_jsonl`]: FlightRecorder::dump_jsonl
    pub fn parse_jsonl(dump: &str) -> Result<Vec<TraceEvent>, serde::Error> {
        dump.lines()
            .filter(|l| !l.trim().is_empty())
            .map(serde_json::from_str)
            .collect()
    }
}

/// Run `f` with the recorder; if it panics, dump the retained trace to
/// `dump_path` as JSONL before resuming the unwind.  The black-box
/// pattern: an assertion failure deep in a long simulation leaves the
/// last N scheduling decisions on disk for post-mortem analysis.
pub fn run_with_dump_on_panic<R>(
    recorder: &mut FlightRecorder,
    dump_path: &std::path::Path,
    f: impl FnOnce(&mut FlightRecorder) -> R,
) -> R {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut *recorder)));
    match result {
        Ok(r) => r,
        Err(payload) => {
            let _ = std::fs::write(dump_path, recorder.dump_jsonl());
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_in_order_under_capacity() {
        let mut r = FlightRecorder::new(8);
        for c in 0..5u64 {
            r.record(TraceEvent::grant(c, 1, 2, 0));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let cycles: Vec<u64> = r.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wraps_at_capacity_keeping_newest() {
        let mut r = FlightRecorder::new(4);
        for c in 0..10u64 {
            r.record(TraceEvent::credit_consumed(c, 3));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.dropped(), 6);
        let cycles: Vec<u64> = r.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "oldest-first after wrap");
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let mut r = FlightRecorder::disabled();
        r.record(TraceEvent::grant(0, 0, 0, 0));
        assert!(r.is_empty());
        assert!(!r.is_enabled());
        assert_eq!(r.recorded(), 0);
    }

    #[test]
    fn jsonl_roundtrip() {
        let mut r = FlightRecorder::new(8);
        r.record(TraceEvent::grant(5, 1, 3, 2));
        r.record(TraceEvent::vc_stalled(6, 0, 3, 1));
        r.record(TraceEvent::fault_detected(7, 1));
        r.record(TraceEvent::quarantined(8, 12));
        let dump = r.dump_jsonl();
        assert_eq!(dump.lines().count(), 4);
        let back = FlightRecorder::parse_jsonl(&dump).unwrap();
        let orig: Vec<TraceEvent> = r.events().collect();
        assert_eq!(back, orig, "JSONL must round-trip bit-exactly");
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut r = FlightRecorder::new(2);
        r.record(TraceEvent::grant(0, 0, 0, 0));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 2);
        r.record(TraceEvent::grant(1, 0, 0, 0));
        assert_eq!(r.len(), 1);
    }
}
