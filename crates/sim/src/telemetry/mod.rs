//! Zero-overhead telemetry substrate: counters, stage profiling, flight
//! recording, windowed snapshots.
//!
//! Observability in a cycle-accurate simulator has two hard constraints:
//!
//! 1. **Free when off.**  The hot path (`MmrRouter::step` and the
//!    arbitration kernels) is pinned allocation-free and benchmarked per
//!    cycle; instrumentation must cost at most a predictable handful of
//!    branch-free instructions when disabled.
//! 2. **Deterministic when on.**  Experiments replay bit-for-bit from a
//!    seed; telemetry must never perturb the RNG streams, and its own
//!    reports must be reproducible unless the user explicitly opts into
//!    wall-clock timing.
//!
//! The pieces here meet both:
//!
//! * [`Registry`] — interned static counter names mapped to dense `u64`
//!   slots.  [`Registry::add`] is a single masked add (`slots[i] += n &
//!   mask`): no branch, a no-op when the registry is disabled.
//! * [`Clock`] — wall-time injection.  Simulation code never calls
//!   `Instant::now` directly; it asks the injected clock, which is the
//!   no-op [`NullClock`] by default so reports stay deterministic.
//!   [`MonotonicClock`] opts into real timing.
//! * [`profiler::StageProfiler`] — per-pipeline-stage call/work/wall-time
//!   accounting built on [`Clock`].
//! * [`recorder::FlightRecorder`] — a fixed-capacity ring of binary
//!   [`recorder::TraceEvent`] records with zero steady-state allocation,
//!   dumpable as JSONL (on demand or on panic).
//! * [`snapshot::SnapshotRing`] — a pre-allocated buffer for periodic
//!   windowed snapshots, counting (never silently dropping) overflow.

pub mod expose;
pub mod profiler;
pub mod recorder;
pub mod snapshot;

use serde::{Deserialize, Serialize};
use std::time::Instant;

pub use expose::{validate_exposition, ExpositionStats};
pub use profiler::{StageId, StageProfiler, StageSample};
pub use recorder::{run_with_dump_on_panic, FlightRecorder, TraceEvent, TraceKind};
pub use snapshot::SnapshotRing;

/// A source of wall-clock timestamps, injected so simulation determinism
/// is untouched: models measure durations through this trait and the
/// default [`NullClock`] returns a constant, keeping every report
/// bit-reproducible.  Swap in [`MonotonicClock`] to see real timings.
pub trait Clock: Send {
    /// Current timestamp in nanoseconds (monotonic; origin arbitrary).
    fn now_ns(&self) -> u64;
}

/// Real monotonic time via [`std::time::Instant`].
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is the moment of construction.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// The deterministic default clock: every timestamp is zero, so wall-time
/// fields in reports are exactly reproducible across runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullClock;

impl Clock for NullClock {
    fn now_ns(&self) -> u64 {
        0
    }
}

/// Handle to a registered counter slot (a dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// One named counter value in a report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Counter name as registered.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// A registry of named `u64` counters with pre-registered dense slots.
///
/// Names are `&'static str` and interned at registration: registering the
/// same name twice returns the same [`CounterId`].  The increment path is
/// branch-free — [`Registry::add`] compiles to one AND and one add — and
/// becomes a no-op when the registry is disabled (the mask is zero), so
/// instrumented hot loops cost the same armed or not.
#[derive(Debug)]
pub struct Registry {
    names: Vec<&'static str>,
    slots: Vec<u64>,
    mask: u64,
}

impl Registry {
    /// An enabled registry with no counters yet.
    pub fn new() -> Self {
        Registry {
            names: Vec::new(),
            slots: Vec::new(),
            mask: u64::MAX,
        }
    }

    /// A disabled registry: registration works, increments are no-ops.
    pub fn disabled() -> Self {
        Registry {
            mask: 0,
            ..Registry::new()
        }
    }

    /// Enable or disable counting.  Disabling does not clear values.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.mask = if enabled { u64::MAX } else { 0 };
    }

    /// Whether increments currently take effect.
    pub fn is_enabled(&self) -> bool {
        self.mask != 0
    }

    /// Register (or look up) the counter named `name` and return its
    /// slot.  Registration allocates; do it at construction time, never
    /// per cycle.
    pub fn register(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.names.iter().position(|&n| n == name) {
            return CounterId(i as u32);
        }
        self.names.push(name);
        self.slots.push(0);
        CounterId((self.names.len() - 1) as u32)
    }

    /// Add `n` to a counter: one masked add, no branch, no-op when the
    /// registry is disabled.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.slots[id.0 as usize] = self.slots[id.0 as usize].wrapping_add(n & self.mask);
    }

    /// Increment a counter by one.
    #[inline]
    pub fn incr(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Overwrite a counter with a gauge reading (masked like [`add`]:
    /// keeps the old value when disabled).
    ///
    /// [`add`]: Registry::add
    #[inline]
    pub fn set_gauge(&mut self, id: CounterId, value: u64) {
        let old = self.slots[id.0 as usize];
        self.slots[id.0 as usize] = (value & self.mask) | (old & !self.mask);
    }

    /// Current value of a counter.
    pub fn get(&self, id: CounterId) -> u64 {
        self.slots[id.0 as usize]
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no counters are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Zero every counter.
    pub fn reset(&mut self) {
        self.slots.fill(0);
    }

    /// Iterate `(name, value)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.names.iter().copied().zip(self.slots.iter().copied())
    }

    /// Snapshot every counter as an owned, serializable sample list.
    /// Allocates — report-time only.
    pub fn samples(&self) -> Vec<CounterSample> {
        let mut out = Vec::new();
        self.write_into(&mut out);
        out
    }

    /// Refill `out` with the current samples, reusing its capacity.  The
    /// only allocations are `out`'s one-time growth and the name strings;
    /// scrape loops that want zero allocation should use [`Registry::iter`]
    /// with the exposition writers instead.
    pub fn write_into(&self, out: &mut Vec<CounterSample>) {
        out.clear();
        out.extend(self.iter().map(|(name, value)| CounterSample {
            name: name.to_string(),
            value,
        }));
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_interns_names() {
        let mut r = Registry::new();
        let a = r.register("grants");
        let b = r.register("stalls");
        let a2 = r.register("grants");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn add_and_incr_accumulate() {
        let mut r = Registry::new();
        let id = r.register("x");
        r.add(id, 5);
        r.incr(id);
        assert_eq!(r.get(id), 6);
        assert_eq!(r.samples()[0].value, 6);
        r.reset();
        assert_eq!(r.get(id), 0);
    }

    #[test]
    fn disabled_registry_is_a_no_op() {
        let mut r = Registry::disabled();
        let id = r.register("x");
        r.add(id, 100);
        r.incr(id);
        assert_eq!(r.get(id), 0);
        assert!(!r.is_enabled());
        r.set_enabled(true);
        r.incr(id);
        assert_eq!(r.get(id), 1);
    }

    #[test]
    fn gauge_set_respects_mask() {
        let mut r = Registry::new();
        let id = r.register("g");
        r.set_gauge(id, 42);
        assert_eq!(r.get(id), 42);
        r.set_enabled(false);
        r.set_gauge(id, 7);
        assert_eq!(r.get(id), 42, "disabled gauge write must keep old value");
    }

    #[test]
    fn clocks_behave() {
        let null = NullClock;
        assert_eq!(null.now_ns(), 0);
        assert_eq!(null.now_ns(), 0);
        let mono = MonotonicClock::new();
        let a = mono.now_ns();
        let b = mono.now_ns();
        assert!(b >= a, "monotonic clock must not go backwards");
    }
}
