//! Prometheus text exposition (version 0.0.4) for the telemetry
//! substrate.
//!
//! Writers append `# HELP`/`# TYPE` headers and sample lines to a
//! caller-supplied `String`, so a scrape loop that reuses its buffer
//! performs no heap allocation once the buffer has grown to its working
//! size: every writer takes iterators ([`crate::telemetry::Registry::iter`],
//! [`crate::telemetry::StageProfiler::iter`],
//! [`crate::stats::LogHistogram::nonzero_buckets`]) rather than the
//! allocating `samples()` snapshots.
//!
//! Histograms follow the Prometheus convention: cumulative `le` buckets
//! (each bucket counts observations `<=` its bound), a `+Inf` bucket
//! equal to `_count`, and an exact `_sum`.  Bucket bounds come from the
//! [`LogHistogram`]'s own geometric grid, scaled by a caller-supplied
//! factor so router-cycle measurements can be exposed in microseconds.
//!
//! [`validate_exposition`] is the matching self-check parser used by
//! tests and the CI artifact gate: it verifies headers, metric-name
//! syntax, monotone cumulative buckets, and `_count`/`+Inf` agreement.

use crate::stats::LogHistogram;
use std::fmt::Write;

/// Write a `# HELP` + `# TYPE` header for a metric family.
pub fn write_header(out: &mut String, name: &str, help: &str, kind: &str) {
    debug_assert!(valid_metric_name(name), "invalid metric name {name}");
    write_header_parts(out, &[name], help, kind);
}

fn push_parts(out: &mut String, parts: &[&str]) {
    for p in parts {
        out.push_str(p);
    }
}

/// As [`write_header`], with the family name given in concatenated
/// pieces so namespaced names need no intermediate `String`.
pub fn write_header_parts(out: &mut String, name: &[&str], help: &str, kind: &str) {
    out.push_str("# HELP ");
    push_parts(out, name);
    out.push(' ');
    out.push_str(help);
    out.push('\n');
    out.push_str("# TYPE ");
    push_parts(out, name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

fn write_label_set(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

/// Write one integer-valued sample line.
pub fn write_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    write_sample_parts(out, &[name], labels, value);
}

/// As [`write_sample`], with the metric name in concatenated pieces.
pub fn write_sample_parts(out: &mut String, name: &[&str], labels: &[(&str, &str)], value: u64) {
    push_parts(out, name);
    write_label_set(out, labels);
    let _ = writeln!(out, " {value}");
}

/// Write one float-valued sample line.
pub fn write_sample_f64(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    write_sample_f64_parts(out, &[name], labels, value);
}

/// As [`write_sample_f64`], with the metric name in concatenated pieces.
pub fn write_sample_f64_parts(
    out: &mut String,
    name: &[&str],
    labels: &[(&str, &str)],
    value: f64,
) {
    push_parts(out, name);
    write_label_set(out, labels);
    let _ = writeln!(out, " {value}");
}

/// Write a counter family from `(name, value)` pairs, e.g. straight off
/// [`crate::telemetry::Registry::iter`].  Each counter becomes
/// `<ns>_<name>`.
pub fn write_counters<'a>(
    out: &mut String,
    ns: &str,
    counters: impl Iterator<Item = (&'a str, u64)>,
) {
    for (name, value) in counters {
        push_parts(
            out,
            &["# HELP ", ns, "_", name, " Router counter ", name, ".\n"],
        );
        push_parts(out, &["# TYPE ", ns, "_", name, " counter\n"]);
        write_sample_parts(out, &[ns, "_", name], &[], value);
    }
}

/// Write the stage-profile families from `(name, calls, work, wall_ns)`
/// tuples, e.g. straight off [`crate::telemetry::StageProfiler::iter`].
pub fn write_stages<'a>(
    out: &mut String,
    ns: &str,
    stages: impl Iterator<Item = (&'a str, u64, u64, u64)> + Clone,
) {
    write_header_parts(
        out,
        &[ns, "_stage_calls_total"],
        "Times each pipeline stage executed.",
        "counter",
    );
    for (name, calls, _, _) in stages.clone() {
        write_sample_parts(out, &[ns, "_stage_calls_total"], &[("stage", name)], calls);
    }
    write_header_parts(
        out,
        &[ns, "_stage_work_total"],
        "Logical work units accumulated per pipeline stage.",
        "counter",
    );
    for (name, _, work, _) in stages.clone() {
        write_sample_parts(out, &[ns, "_stage_work_total"], &[("stage", name)], work);
    }
    write_header_parts(
        out,
        &[ns, "_stage_wall_ns_total"],
        "Wall nanoseconds accumulated per pipeline stage (zero under the null clock).",
        "counter",
    );
    for (name, _, _, wall_ns) in stages {
        write_sample_parts(
            out,
            &[ns, "_stage_wall_ns_total"],
            &[("stage", name)],
            wall_ns,
        );
    }
}

/// Write one [`LogHistogram`] as a Prometheus histogram with cumulative
/// `le` buckets.  `scale` converts recorded integer values to the exposed
/// unit (e.g. router cycles → microseconds); `labels` are attached to
/// every sample line.  Allocation-free given a warm `out` buffer.
pub fn write_histogram(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    h: &LogHistogram,
    scale: f64,
) {
    let mut cumulative = 0u64;
    for b in h.nonzero_buckets() {
        cumulative += b.count;
        out.push_str(name);
        out.push_str("_bucket{");
        for (k, v) in labels {
            let _ = write!(out, "{k}=\"{v}\",");
        }
        let _ = writeln!(out, "le=\"{}\"}} {cumulative}", b.hi as f64 * scale);
    }
    out.push_str(name);
    out.push_str("_bucket{");
    for (k, v) in labels {
        let _ = write!(out, "{k}=\"{v}\",");
    }
    let _ = writeln!(out, "le=\"+Inf\"}} {}", h.count());
    write_sample_f64_parts(out, &[name, "_sum"], labels, h.sum() as f64 * scale);
    write_sample_parts(out, &[name, "_count"], labels, h.count());
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Summary of a validated exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpositionStats {
    /// Metric families declared with `# TYPE`.
    pub families: usize,
    /// Sample lines.
    pub samples: usize,
}

/// Strip a histogram-series suffix, giving the declared family name.
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base;
        }
    }
    name
}

/// Validate a Prometheus text exposition: every sample's family must be
/// declared with `# TYPE`, metric names must be syntactically valid,
/// histogram `le` buckets must be cumulative (monotone non-decreasing)
/// and agree with `_count` at `+Inf`.  Returns summary statistics or a
/// message naming the first offending line.
pub fn validate_exposition(text: &str) -> Result<ExpositionStats, String> {
    let mut families: Vec<(String, String)> = Vec::new();
    let mut samples = 0usize;
    // Cumulative-bucket state for the histogram series currently being
    // read: (series key = name + labels sans le, last cumulative count).
    let mut bucket_series: Option<(String, u64, bool)> = None; // (key, last cum, saw +Inf)
    let mut inf_count: Option<u64> = None;

    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| Err::<ExpositionStats, _>(format!("line {}: {msg}", ln + 1));
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap_or_default();
            let kind = it.next().unwrap_or_default();
            if !valid_metric_name(name) {
                return err(format!("invalid family name `{name}`"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return err(format!("unknown metric type `{kind}`"));
            }
            if families.iter().any(|(n, _)| n == name) {
                return err(format!("duplicate # TYPE for `{name}`"));
            }
            families.push((name.to_string(), kind.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }

        // Sample line: name[{labels}] value
        let (series, value) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => return err("sample line has no value".into()),
        };
        let value: f64 = match value.parse() {
            Ok(v) => v,
            Err(_) => return err(format!("unparseable sample value `{value}`")),
        };
        let name = series.split('{').next().unwrap_or_default();
        if !valid_metric_name(name) {
            return err(format!("invalid metric name `{name}`"));
        }
        let family = family_of(name);
        let declared = families.iter().find(|(n, _)| n == family || n == name);
        if declared.is_none() {
            return err(format!("sample for undeclared family `{family}`"));
        }
        samples += 1;

        // Histogram bucket bookkeeping.
        if name.ends_with("_bucket") {
            let labels = series.strip_prefix(name).unwrap_or_default();
            let (le, key) = match extract_le(labels) {
                Some(pair) => pair,
                None => return err("histogram bucket without an `le` label".into()),
            };
            let cum = value as u64;
            match &mut bucket_series {
                Some((k, last, saw_inf)) if *k == key => {
                    if *saw_inf {
                        return err(format!("bucket after +Inf in series `{key}`"));
                    }
                    if cum < *last {
                        return err(format!(
                            "cumulative bucket count decreased ({last} -> {cum}) in `{key}`"
                        ));
                    }
                    *last = cum;
                    if le == "+Inf" {
                        *saw_inf = true;
                        inf_count = Some(cum);
                    }
                }
                _ => {
                    bucket_series = Some((key, cum, le == "+Inf"));
                    if le == "+Inf" {
                        inf_count = Some(cum);
                    }
                }
            }
        } else if name.ends_with("_count") {
            if let Some(expected) = inf_count.take() {
                if value as u64 != expected {
                    return err(format!(
                        "_count {} disagrees with +Inf bucket {expected}",
                        value as u64
                    ));
                }
            }
            bucket_series = None;
        }
    }
    if let Some((key, _, saw_inf)) = bucket_series {
        if !saw_inf {
            return Err(format!(
                "histogram series `{key}` never closed with le=\"+Inf\""
            ));
        }
    }
    Ok(ExpositionStats {
        families: families.len(),
        samples,
    })
}

/// Split a bucket label set into its `le` value and the series key (the
/// label set with `le` removed).
fn extract_le(labels: &str) -> Option<(String, String)> {
    let inner = labels.strip_prefix('{')?.strip_suffix('}')?;
    let mut le = None;
    let mut key = String::new();
    for part in inner.split(',') {
        if part.is_empty() {
            continue;
        }
        let (k, v) = part.split_once('=')?;
        if k == "le" {
            le = Some(v.trim_matches('"').to_string());
        } else {
            key.push_str(part);
            key.push(',');
        }
    }
    Some((le?, key))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_sample_lines_are_well_formed() {
        let mut out = String::new();
        write_header(&mut out, "mmr_cycles", "Executed flit cycles.", "counter");
        write_sample(&mut out, "mmr_cycles", &[], 8000);
        write_sample(&mut out, "mmr_grants", &[("port", "3")], 17);
        assert!(out.contains("# TYPE mmr_cycles counter"));
        assert!(out.contains("mmr_cycles 8000\n"));
        assert!(out.contains("mmr_grants{port=\"3\"} 17\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_validate() {
        let mut h = LogHistogram::default();
        for v in [1u64, 1, 5, 100, 100_000] {
            h.record(v);
        }
        let mut out = String::new();
        write_header(&mut out, "mmr_delay_us", "Delay.", "histogram");
        write_histogram(&mut out, "mmr_delay_us", &[("class", "vbr")], &h, 1.0);
        let stats = validate_exposition(&out).expect("generated exposition validates");
        assert!(stats.samples >= 7, "buckets + +Inf + sum + count");
        assert!(out.contains("le=\"+Inf\"} 5\n"));
        assert!(out.contains("mmr_delay_us_count{class=\"vbr\"} 5"));
        assert!(out.contains("mmr_delay_us_sum{class=\"vbr\"} 100107"));
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        // Sample without a TYPE header.
        assert!(validate_exposition("orphan_metric 5\n").is_err());
        // Non-monotone cumulative buckets.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate_exposition(bad).unwrap_err().contains("decreased"));
        // _count disagreeing with +Inf.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 4\n";
        assert!(validate_exposition(bad).unwrap_err().contains("disagrees"));
        // Unclosed histogram series.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\n";
        assert!(validate_exposition(bad).unwrap_err().contains("+Inf"));
        // Invalid metric name.
        assert!(validate_exposition("# TYPE 9bad counter\n9bad 1\n").is_err());
        // Duplicate TYPE.
        let bad = "# TYPE c counter\n# TYPE c counter\nc 1\n";
        assert!(validate_exposition(bad).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn stage_and_counter_writers_validate() {
        let counters = [("cycles", 100u64), ("grants_issued", 42)];
        let stages = [
            ("arbitration", 100u64, 42u64, 0u64),
            ("crossbar", 100, 40, 0),
        ];
        let mut out = String::new();
        write_counters(&mut out, "mmr", counters.iter().copied());
        write_stages(
            &mut out,
            "mmr",
            stages.iter().map(|&(n, c, w, t)| (n, c, w, t)),
        );
        let stats = validate_exposition(&out).expect("writer output validates");
        assert_eq!(stats.families, 5, "2 counters + 3 stage families");
        assert!(out.contains("mmr_stage_work_total{stage=\"arbitration\"} 42"));
    }

    #[test]
    fn empty_histogram_still_closes_its_series() {
        let h = LogHistogram::default();
        let mut out = String::new();
        write_header(&mut out, "h", "Empty.", "histogram");
        write_histogram(&mut out, "h", &[], &h, 1.0);
        validate_exposition(&out).expect("empty histogram exposes +Inf/sum/count");
        assert!(out.contains("h_bucket{le=\"+Inf\"} 0"));
    }
}
