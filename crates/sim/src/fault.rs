//! Deterministic fault injection: seeded, cycle-stamped fault schedules.
//!
//! A [`FaultPlan`] is an immutable, sorted list of [`FaultEvent`]s, each
//! naming the flit cycle at which it fires and what breaks.  Plans are
//! either written out explicitly (tests aiming faults at specific
//! connections) or generated from a [`FaultPlanConfig`] and a [`SimRng`]
//! stream, so a chaos run replays bit-for-bit from its seed: same seed,
//! same schedule, same simulation.
//!
//! The plan deliberately knows nothing about the router; targets are
//! plain indices (input port, output port, connection) that the consumer
//! interprets.  Consumption state (the cursor) lives with the consumer,
//! keeping the plan itself serializable and shareable.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// What breaks when a fault event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The next flit forwarded on `input`'s link arrives with flipped
    /// bits; the router-ingress checksum check must catch it.
    CorruptFlit {
        /// Input port whose link corrupts the next flit.
        input: usize,
    },
    /// The next flit forwarded on `input`'s link vanishes entirely —
    /// together with the credit the NIC spent on it.
    DropFlit {
        /// Input port whose link loses the next flit.
        input: usize,
    },
    /// One credit return for `conn` is lost on the return path.
    DropCredit {
        /// Connection whose next credit return is lost.
        conn: usize,
    },
    /// One spurious extra credit return for `conn` appears.
    DuplicateCredit {
        /// Connection that receives a phantom credit.
        conn: usize,
    },
    /// Output port `output` stops accepting flits for `flit_cycles`.
    StallOutput {
        /// Stalled output port.
        output: usize,
        /// Stall duration in flit cycles.
        flit_cycles: u64,
    },
    /// Connection `conn`'s source violates its admitted contract,
    /// injecting `extra_flits_per_cycle` flits beyond its admitted rate
    /// every flit cycle for `flit_cycles`.
    RogueSource {
        /// Misbehaving connection.
        conn: usize,
        /// Duration of the violation in flit cycles.
        flit_cycles: u64,
        /// Extra flits injected per flit cycle.
        extra_flits_per_cycle: u32,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Flit cycle (from run start) at which the fault fires.
    pub at: u64,
    /// What breaks.
    pub kind: FaultKind,
}

/// An immutable, cycle-sorted schedule of faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn empty() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// A plan from explicit events; sorts them by cycle (stable, so
    /// same-cycle events keep their given order).
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// The schedule, sorted by firing cycle.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Cycle of the last scheduled event, if any.
    pub fn last_cycle(&self) -> Option<u64> {
        self.events.last().map(|e| e.at)
    }
}

/// Generation parameters for a randomized [`FaultPlan`].
///
/// Rates are expressed as expected events per 1 000 flit cycles of the
/// fault window, so scaling the window length scales the event count
/// proportionally.  All randomness comes from the caller's [`SimRng`]
/// stream, so a `(config, seed)` pair always yields the same plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// First flit cycle of the fault window.
    pub window_start: u64,
    /// Window length in flit cycles (events fire in
    /// `[window_start, window_start + window_len)`).
    pub window_len: u64,
    /// Flit corruptions per 1 000 cycles.
    pub corrupt_per_kcycle: f64,
    /// Flit drops per 1 000 cycles.
    pub drop_per_kcycle: f64,
    /// Credit losses per 1 000 cycles.
    pub credit_loss_per_kcycle: f64,
    /// Credit duplications per 1 000 cycles.
    pub credit_dup_per_kcycle: f64,
    /// Output stalls per 1 000 cycles.
    pub stall_per_kcycle: f64,
    /// Duration of each output stall, flit cycles.
    pub stall_len: u64,
    /// Rogue-source episodes per 1 000 cycles.
    pub rogue_per_kcycle: f64,
    /// Duration of each rogue episode, flit cycles.
    pub rogue_len: u64,
    /// Extra flits a rogue source injects per flit cycle.
    pub rogue_burst: u32,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            window_start: 5_000,
            window_len: 10_000,
            corrupt_per_kcycle: 2.0,
            drop_per_kcycle: 1.0,
            credit_loss_per_kcycle: 1.0,
            credit_dup_per_kcycle: 1.0,
            stall_per_kcycle: 0.3,
            stall_len: 32,
            rogue_per_kcycle: 0.1,
            rogue_len: 1_000,
            rogue_burst: 1,
        }
    }
}

impl FaultPlanConfig {
    /// End of the fault window (exclusive).
    pub fn window_end(&self) -> u64 {
        self.window_start + self.window_len
    }

    /// A copy with every event rate multiplied by `factor` (durations and
    /// the window are unchanged) — the x-axis of fault-rate sweeps.
    pub fn scaled(&self, factor: f64) -> Self {
        FaultPlanConfig {
            corrupt_per_kcycle: self.corrupt_per_kcycle * factor,
            drop_per_kcycle: self.drop_per_kcycle * factor,
            credit_loss_per_kcycle: self.credit_loss_per_kcycle * factor,
            credit_dup_per_kcycle: self.credit_dup_per_kcycle * factor,
            stall_per_kcycle: self.stall_per_kcycle * factor,
            rogue_per_kcycle: self.rogue_per_kcycle * factor,
            ..*self
        }
    }

    /// Expected event count for one rate over the window.
    fn count(&self, per_kcycle: f64) -> usize {
        (per_kcycle * self.window_len as f64 / 1_000.0).round() as usize
    }

    /// Generate a plan for a router with `ports` ports and `conns`
    /// connections.  Every random draw comes from `rng`, so the plan is a
    /// pure function of `(self, ports, conns, rng state)`.
    pub fn generate(&self, ports: usize, conns: usize, rng: &mut SimRng) -> FaultPlan {
        let mut events = Vec::new();
        if self.window_len == 0 {
            return FaultPlan::empty();
        }
        let at = |rng: &mut SimRng| self.window_start + rng.below(self.window_len);
        if ports > 0 {
            for _ in 0..self.count(self.corrupt_per_kcycle) {
                let cycle = at(rng);
                let input = rng.index(ports);
                events.push(FaultEvent {
                    at: cycle,
                    kind: FaultKind::CorruptFlit { input },
                });
            }
            for _ in 0..self.count(self.drop_per_kcycle) {
                let cycle = at(rng);
                let input = rng.index(ports);
                events.push(FaultEvent {
                    at: cycle,
                    kind: FaultKind::DropFlit { input },
                });
            }
            for _ in 0..self.count(self.stall_per_kcycle) {
                let cycle = at(rng);
                let output = rng.index(ports);
                events.push(FaultEvent {
                    at: cycle,
                    kind: FaultKind::StallOutput {
                        output,
                        flit_cycles: self.stall_len,
                    },
                });
            }
        }
        if conns > 0 {
            for _ in 0..self.count(self.credit_loss_per_kcycle) {
                let cycle = at(rng);
                let conn = rng.index(conns);
                events.push(FaultEvent {
                    at: cycle,
                    kind: FaultKind::DropCredit { conn },
                });
            }
            for _ in 0..self.count(self.credit_dup_per_kcycle) {
                let cycle = at(rng);
                let conn = rng.index(conns);
                events.push(FaultEvent {
                    at: cycle,
                    kind: FaultKind::DuplicateCredit { conn },
                });
            }
            for _ in 0..self.count(self.rogue_per_kcycle) {
                let cycle = at(rng);
                let conn = rng.index(conns);
                events.push(FaultEvent {
                    at: cycle,
                    kind: FaultKind::RogueSource {
                        conn,
                        flit_cycles: self.rogue_len,
                        extra_flits_per_cycle: self.rogue_burst,
                    },
                });
            }
        }
        FaultPlan::from_events(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_has_no_events() {
        let p = FaultPlan::empty();
        assert!(p.is_empty());
        assert_eq!(p.last_cycle(), None);
    }

    #[test]
    fn from_events_sorts_by_cycle() {
        let p = FaultPlan::from_events(vec![
            FaultEvent {
                at: 30,
                kind: FaultKind::DropCredit { conn: 1 },
            },
            FaultEvent {
                at: 10,
                kind: FaultKind::CorruptFlit { input: 0 },
            },
            FaultEvent {
                at: 20,
                kind: FaultKind::DuplicateCredit { conn: 2 },
            },
        ]);
        let cycles: Vec<u64> = p.events().iter().map(|e| e.at).collect();
        assert_eq!(cycles, vec![10, 20, 30]);
        assert_eq!(p.last_cycle(), Some(30));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = FaultPlanConfig::default();
        let a = cfg.generate(4, 40, &mut SimRng::seed_from_u64(7));
        let b = cfg.generate(4, 40, &mut SimRng::seed_from_u64(7));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = cfg.generate(4, 40, &mut SimRng::seed_from_u64(8));
        assert_ne!(a, c, "distinct seeds must give distinct plans");
    }

    #[test]
    fn events_land_inside_the_window() {
        let cfg = FaultPlanConfig {
            window_start: 1_000,
            window_len: 500,
            ..Default::default()
        };
        let p = cfg.generate(8, 16, &mut SimRng::seed_from_u64(3));
        for e in p.events() {
            assert!(
                (1_000..1_500).contains(&e.at),
                "event at {} out of window",
                e.at
            );
        }
    }

    #[test]
    fn scaling_rates_scales_event_count() {
        let cfg = FaultPlanConfig::default();
        let base = cfg.generate(4, 40, &mut SimRng::seed_from_u64(1));
        let double = cfg
            .scaled(2.0)
            .generate(4, 40, &mut SimRng::seed_from_u64(1));
        assert_eq!(double.len(), base.len() * 2);
        let zero = cfg
            .scaled(0.0)
            .generate(4, 40, &mut SimRng::seed_from_u64(1));
        assert!(zero.is_empty());
    }

    #[test]
    fn zero_window_or_targets_is_safe() {
        let cfg = FaultPlanConfig {
            window_len: 0,
            ..Default::default()
        };
        assert!(cfg.generate(4, 4, &mut SimRng::seed_from_u64(0)).is_empty());
        let cfg = FaultPlanConfig::default();
        let p = cfg.generate(0, 0, &mut SimRng::seed_from_u64(0));
        assert!(p.is_empty());
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let cfg = FaultPlanConfig::default();
        let p = cfg.generate(4, 12, &mut SimRng::seed_from_u64(11));
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
