//! Welford running mean / variance / extrema.

use serde::{Deserialize, Serialize};

/// Streaming mean, variance (Welford's algorithm), min and max.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// An empty accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of samples seen.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 if empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 if fewer than 2 samples.
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample; `None` if empty.
    #[inline]
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum sample; `None` if empty.
    #[inline]
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel reduction), using
    /// Chan et al.'s pairwise update.
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroish() {
        let r = Running::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert!(r.min().is_none());
        assert!(r.max().is_none());
    }

    #[test]
    fn matches_closed_form() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.variance() - 4.0).abs() < 1e-12);
        assert_eq!(r.std_dev(), 2.0);
        assert_eq!(r.min(), Some(2.0));
        assert_eq!(r.max(), Some(9.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut seq = Running::new();
        for &x in &xs {
            seq.push(x);
        }
        let mut a = Running::new();
        let mut b = Running::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.variance() - seq.variance()).abs() < 1e-10);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = Running::new();
        a.push(1.0);
        let empty = Running::new();
        let mut b = a.clone();
        b.merge(&empty);
        assert_eq!(b.count(), 1);
        let mut c = Running::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }
}
