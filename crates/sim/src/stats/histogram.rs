//! Logarithmically-bucketed histogram for latency distributions.
//!
//! Delay distributions in a saturating router span six orders of magnitude
//! (sub-microsecond through seconds), so fixed-width buckets are useless.
//! `LogHistogram` uses base-2 sub-bucketed buckets (the HdrHistogram idea,
//! reimplemented minimally) giving a bounded relative error per bucket.

use serde::{Deserialize, Serialize};

/// Histogram over `u64` values with geometric bucket widths.
///
/// Values are bucketed by (exponent, sub-bucket): `sub_bits` linear
/// sub-buckets per power of two, giving a worst-case relative error of
/// `2^-sub_bits`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    sub_bits: u32,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl LogHistogram {
    /// Create a histogram with `sub_bits` sub-bucket bits (3 is a good
    /// default: ≤12.5 % relative error).
    pub fn new(sub_bits: u32) -> Self {
        assert!(sub_bits > 0 && sub_bits < 16);
        // 64 exponents x 2^sub_bits sub-buckets is an overestimate (small
        // exponents alias) but is only a few KiB.
        LogHistogram {
            sub_bits,
            counts: vec![0; 64 << sub_bits],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, v: u64) -> usize {
        let sub = self.sub_bits;
        if v < (1 << sub) {
            return v as usize;
        }
        let exp = 63 - v.leading_zeros(); // >= sub
        let sub_idx = (v >> (exp - sub)) - (1 << sub); // top sub bits after the leading 1
        (((exp - sub + 1) as usize) << sub) + sub_idx as usize
    }

    /// Representative (midpoint) value of a bucket.
    fn bucket_mid(&self, idx: usize) -> u64 {
        let sub = self.sub_bits;
        if idx < (1 << sub) {
            return idx as u64;
        }
        let block = (idx >> sub) as u32; // = exp - sub + 1
        let sub_idx = (idx & ((1 << sub) - 1)) as u64;
        let exp = block + sub - 1;
        let base = (1u64 << exp) + (sub_idx << (exp - sub));
        base + (1u64 << (exp - sub)) / 2
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let b = self.bucket_of(v);
        self.counts[b] += 1;
        self.total += 1;
        self.sum += v as u128;
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded values.
    #[inline]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of recorded values (sums are kept exactly).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile `q` in `[0, 1]`; `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        if target >= self.total {
            return Some(self.max);
        }
        let mut acc = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(self.bucket_mid(idx).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram (must share `sub_bits`).
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.sub_bits, other.sub_bits, "sub_bits mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new(3);
        for v in 0..8 {
            h.record(v);
        }
        for v in 0..8u64 {
            assert_eq!(h.bucket_mid(h.bucket_of(v)), v);
        }
    }

    #[test]
    fn bucket_relative_error_bounded() {
        let h = LogHistogram::new(3);
        for v in [10u64, 100, 1_000, 65_535, 1 << 30, (1 << 40) + 12345] {
            let mid = h.bucket_mid(h.bucket_of(v));
            let rel = (mid as f64 - v as f64).abs() / v as f64;
            assert!(rel <= 0.125 + 1e-9, "v={v} mid={mid} rel={rel}");
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LogHistogram::default();
        for v in [5u64, 10, 15, 1000] {
            h.record(v);
        }
        assert_eq!(h.mean(), 257.5);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn quantiles_are_ordered_and_close() {
        let mut h = LogHistogram::default();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        let p100 = h.quantile(1.0).unwrap();
        assert!(p50 <= p99 && p99 <= p100);
        assert!((p50 as f64 - 5000.0).abs() / 5000.0 < 0.13, "p50={p50}");
        assert!((p99 as f64 - 9900.0).abs() / 9900.0 < 0.13, "p99={p99}");
        assert_eq!(p100, 10_000);
    }

    #[test]
    fn empty_quantile_none() {
        let h = LogHistogram::default();
        assert!(h.quantile(0.5).is_none());
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.mean(), 505.0);
    }
}
