//! Logarithmically-bucketed histogram for latency distributions.
//!
//! Delay distributions in a saturating router span six orders of magnitude
//! (sub-microsecond through seconds), so fixed-width buckets are useless.
//! `LogHistogram` uses base-2 sub-bucketed buckets (the HdrHistogram idea,
//! reimplemented minimally) giving a bounded relative error per bucket.
//!
//! The storage is fixed-capacity (`64 << sub_bits` slots, a few KiB),
//! sized once at construction: [`LogHistogram::record`] never allocates,
//! so histograms can live on the simulator's hot path.  Quantile queries
//! come in two flavours — [`LogHistogram::quantile`] returns a bucket
//! midpoint, [`LogHistogram::quantile_bounds`] returns the exact bucket
//! interval the true order statistic provably lies in.  Serialization is
//! sparse (only populated buckets), so an armed observatory's report
//! stays proportional to the distribution's support, not its range.

use serde::{Deserialize, Error, Serialize, Value};

/// Histogram over `u64` values with geometric bucket widths.
///
/// Values are bucketed by (exponent, sub-bucket): `sub_bits` linear
/// sub-buckets per power of two, giving a worst-case relative error of
/// `2^-sub_bits`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    sub_bits: u32,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

/// One populated histogram bucket: `count` values fell in `lo..=hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bucket {
    /// Dense bucket index.
    pub index: usize,
    /// Smallest value the bucket covers (inclusive).
    pub lo: u64,
    /// Largest value the bucket covers (inclusive).
    pub hi: u64,
    /// Recorded values in the bucket.
    pub count: u64,
}

impl LogHistogram {
    /// Create a histogram with `sub_bits` sub-bucket bits (3 is a good
    /// default: ≤12.5 % relative error).
    pub fn new(sub_bits: u32) -> Self {
        assert!(sub_bits > 0 && sub_bits < 16);
        // 64 exponents x 2^sub_bits sub-buckets is an overestimate (small
        // exponents alias) but is only a few KiB.
        LogHistogram {
            sub_bits,
            counts: vec![0; 64 << sub_bits],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Sub-bucket bits this histogram was built with.
    pub fn sub_bits(&self) -> u32 {
        self.sub_bits
    }

    #[inline]
    fn bucket_of(&self, v: u64) -> usize {
        let sub = self.sub_bits;
        if v < (1 << sub) {
            return v as usize;
        }
        let exp = 63 - v.leading_zeros(); // >= sub
        let sub_idx = (v >> (exp - sub)) - (1 << sub); // top sub bits after the leading 1
        (((exp - sub + 1) as usize) << sub) + sub_idx as usize
    }

    /// Inclusive value range `[lo, hi]` covered by bucket `idx`.
    pub fn bucket_bounds(&self, idx: usize) -> (u64, u64) {
        let sub = self.sub_bits;
        if idx < (1 << sub) {
            return (idx as u64, idx as u64);
        }
        let block = (idx >> sub) as u32; // = exp - sub + 1
        let sub_idx = (idx & ((1 << sub) - 1)) as u64;
        let exp = block + sub - 1;
        let lo = (1u64 << exp) + (sub_idx << (exp - sub));
        let width = 1u64 << (exp - sub);
        (lo, lo + (width - 1))
    }

    /// Representative (midpoint) value of a bucket.
    fn bucket_mid(&self, idx: usize) -> u64 {
        let (lo, hi) = self.bucket_bounds(idx);
        lo + (hi - lo) / 2
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` occurrences of `v` in O(1).
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = self.bucket_of(v);
        self.counts[b] += n;
        self.total += n;
        self.sum += v as u128 * n as u128;
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded values.
    #[inline]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean of recorded values (sums are kept exactly).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile `q` in `[0, 1]`; `None` if empty.  The top
    /// quantile is exact (the recorded maximum).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        if target >= self.total {
            return Some(self.max);
        }
        self.quantile_bucket(q)
            .map(|idx| self.bucket_mid(idx).min(self.max))
    }

    /// Exact bounds on quantile `q`: the true order statistic lies in
    /// `lo..=hi` (the covering bucket's range, clamped to the recorded
    /// maximum).  `None` if empty.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        self.quantile_bucket(q).map(|idx| {
            let (lo, hi) = self.bucket_bounds(idx);
            (lo.min(self.max), hi.min(self.max))
        })
    }

    /// Dense index of the bucket containing quantile `q`.
    fn quantile_bucket(&self, q: f64) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        if target >= self.total {
            return Some(self.bucket_of(self.max));
        }
        let mut acc = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(idx);
            }
        }
        Some(self.bucket_of(self.max))
    }

    /// Iterate the populated buckets in increasing value order.  Does not
    /// allocate — usable from the Prometheus exposition hot path.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = Bucket> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(index, &count)| {
                let (lo, hi) = self.bucket_bounds(index);
                Bucket {
                    index,
                    lo,
                    hi,
                    count,
                }
            })
    }

    /// Merge another histogram (must share `sub_bits`).
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.sub_bits, other.sub_bits, "sub_bits mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Forget everything recorded; capacity is retained.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.sum = 0;
        self.max = 0;
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new(3)
    }
}

// Sparse JSON encoding: only populated buckets are written, as
// `[index, count]` pairs.  A 512-slot histogram with ten occupied buckets
// serializes to ten pairs, not 512 zeros.
impl Serialize for LogHistogram {
    fn to_value(&self) -> Value {
        let counts: Vec<Value> = self
            .nonzero_buckets()
            .map(|b| Value::Array(vec![Value::U64(b.index as u64), Value::U64(b.count)]))
            .collect();
        Value::Object(vec![
            ("sub_bits".to_string(), Value::U64(self.sub_bits as u64)),
            ("counts".to_string(), Value::Array(counts)),
            ("total".to_string(), Value::U64(self.total)),
            ("sum".to_string(), self.sum.to_value()),
            ("max".to_string(), Value::U64(self.max)),
        ])
    }
}

impl Deserialize for LogHistogram {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let sub_bits = u32::from_maybe(v.get("sub_bits"), "sub_bits")?;
        if sub_bits == 0 || sub_bits >= 16 {
            return Err(Error::new(format!("sub_bits {sub_bits} out of range")));
        }
        let mut h = LogHistogram::new(sub_bits);
        let pairs = match v.get("counts") {
            Some(Value::Array(xs)) => xs,
            other => return Err(Error::new(format!("counts: expected array, got {other:?}"))),
        };
        let mut recorded = 0u64;
        for pair in pairs {
            let (idx, count) = match pair {
                Value::Array(kv) if kv.len() == 2 => (
                    usize::from_maybe(kv.first(), "bucket index")?,
                    u64::from_maybe(kv.get(1), "bucket count")?,
                ),
                other => {
                    return Err(Error::new(format!(
                        "counts entry: expected [index, count], got {other:?}"
                    )))
                }
            };
            if idx >= h.counts.len() {
                return Err(Error::new(format!("bucket index {idx} out of range")));
            }
            h.counts[idx] += count;
            recorded += count;
        }
        h.total = u64::from_maybe(v.get("total"), "total")?;
        h.sum = u128::from_maybe(v.get("sum"), "sum")?;
        h.max = u64::from_maybe(v.get("max"), "max")?;
        if recorded != h.total {
            return Err(Error::new(format!(
                "bucket counts sum to {recorded} but total says {}",
                h.total
            )));
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new(3);
        for v in 0..8 {
            h.record(v);
        }
        for v in 0..8u64 {
            assert_eq!(h.bucket_mid(h.bucket_of(v)), v);
        }
    }

    #[test]
    fn bucket_relative_error_bounded() {
        let h = LogHistogram::new(3);
        for v in [10u64, 100, 1_000, 65_535, 1 << 30, (1 << 40) + 12345] {
            let mid = h.bucket_mid(h.bucket_of(v));
            let rel = (mid as f64 - v as f64).abs() / v as f64;
            assert!(rel <= 0.125 + 1e-9, "v={v} mid={mid} rel={rel}");
        }
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        let h = LogHistogram::new(3);
        for v in [0u64, 1, 7, 8, 9, 255, 256, 1 << 20, u64::MAX] {
            let (lo, hi) = h.bucket_bounds(h.bucket_of(v));
            assert!(lo <= v && v <= hi, "v={v} not in [{lo}, {hi}]");
        }
        // Adjacent buckets tile the value line without gaps or overlap.
        let mut prev_hi = None;
        for idx in 0..h.counts.len() {
            let (lo, hi) = h.bucket_bounds(idx);
            if let Some(p) = prev_hi {
                if lo > 0 {
                    assert_eq!(lo, p + 1, "gap before bucket {idx}");
                }
            }
            if hi == u64::MAX {
                break;
            }
            prev_hi = Some(hi);
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LogHistogram::default();
        for v in [5u64, 10, 15, 1000] {
            h.record(v);
        }
        assert_eq!(h.mean(), 257.5);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn quantiles_are_ordered_and_close() {
        let mut h = LogHistogram::default();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        let p100 = h.quantile(1.0).unwrap();
        assert!(p50 <= p99 && p99 <= p100);
        assert!((p50 as f64 - 5000.0).abs() / 5000.0 < 0.13, "p50={p50}");
        assert!((p99 as f64 - 9900.0).abs() / 9900.0 < 0.13, "p99={p99}");
        assert_eq!(p100, 10_000);
    }

    #[test]
    fn quantile_bounds_bracket_the_true_order_statistic() {
        let mut h = LogHistogram::default();
        let mut values: Vec<u64> = (0..500u64).map(|i| i * i + 3).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            let (lo, hi) = h.quantile_bounds(q).unwrap();
            assert!(
                lo <= truth && truth <= hi,
                "q={q} truth={truth} not in [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        for _ in 0..7 {
            a.record(123);
        }
        b.record_n(123, 7);
        b.record_n(99, 0); // no-op
        assert_eq!(a, b);
    }

    #[test]
    fn empty_quantile_none() {
        let h = LogHistogram::default();
        assert!(h.quantile(0.5).is_none());
        assert!(h.quantile_bounds(0.5).is_none());
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.mean(), 505.0);
    }

    #[test]
    fn nonzero_buckets_cover_every_record() {
        let mut h = LogHistogram::default();
        for v in [3u64, 3, 700, 70_000] {
            h.record(v);
        }
        let buckets: Vec<Bucket> = h.nonzero_buckets().collect();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets.iter().map(|b| b.count).sum::<u64>(), h.count());
        assert!(buckets.windows(2).all(|w| w[0].hi < w[1].lo));
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut h = LogHistogram::new(4);
        for v in [0u64, 1, 9, 1_000, 123_456_789, u64::MAX] {
            h.record(v);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
        // The encoding is sparse: six records, six pairs.
        assert!(
            json.matches('[').count() <= 8,
            "encoding must be sparse: {json}"
        );
    }

    #[test]
    fn corrupt_json_is_rejected() {
        let json = r#"{"sub_bits":3,"counts":[[9999,1]],"total":1,"sum":5,"max":5}"#;
        assert!(serde_json::from_str::<LogHistogram>(json).is_err());
        let json = r#"{"sub_bits":3,"counts":[[5,2]],"total":1,"sum":5,"max":5}"#;
        assert!(
            serde_json::from_str::<LogHistogram>(json).is_err(),
            "total inconsistent with bucket counts must be rejected"
        );
    }

    #[test]
    fn reset_clears_but_keeps_capacity() {
        let mut h = LogHistogram::default();
        h.record(42);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.max(), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }
}
