//! Streaming statistics used by the metrics subsystem.
//!
//! Everything here is O(1) per sample and allocation-free after
//! construction, so it can be updated on every simulated flit without
//! perturbing performance.

mod histogram;
mod jitter;
mod running;
mod timeseries;

pub use histogram::{Bucket, LogHistogram};
pub use jitter::JitterTracker;
pub use running::Running;
pub use timeseries::WindowedSeries;
