//! Delay-jitter tracking.
//!
//! The paper (§5.2) measures jitter as "the variation in the delay
//! experienced by two adjacent [application data units] belonging to the
//! same connection": for consecutive delivered units with delays `d_i`,
//! jitter samples are `|d_i - d_{i-1}|`.
//!
//! Samples feed both a [`Running`] accumulator (exact mean/min/max) and a
//! [`LogHistogram`] (rounded to the nearest integer unit), so reports can
//! quote jitter percentiles instead of re-deriving buckets ad hoc.

use super::{LogHistogram, Running};
use serde::{Deserialize, Serialize};

/// Tracks inter-unit delay jitter for one connection.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JitterTracker {
    last_delay: Option<f64>,
    jitter: Running,
    hist: LogHistogram,
}

impl JitterTracker {
    /// A fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the end-to-end delay of the next unit in sequence; after the
    /// first unit, every call contributes one jitter sample.
    pub fn record_delay(&mut self, delay: f64) {
        if let Some(prev) = self.last_delay {
            let sample = (delay - prev).abs();
            self.jitter.push(sample);
            self.hist.record(sample.round() as u64);
        }
        self.last_delay = Some(delay);
    }

    /// Jitter statistics accumulated so far.
    pub fn stats(&self) -> &Running {
        &self.jitter
    }

    /// Histogram of jitter samples, rounded to the nearest integer unit.
    pub fn histogram(&self) -> &LogHistogram {
        &self.hist
    }

    /// Approximate jitter quantile `q` (integer units); `None` before the
    /// second delivered unit.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.hist.quantile(q)
    }

    /// Number of jitter samples (units delivered minus one, per connection).
    pub fn samples(&self) -> u64 {
        self.jitter.count()
    }

    /// Merge another tracker's accumulated samples (their `last_delay`
    /// chains stay independent — use only for cross-connection aggregation).
    pub fn merge_stats(&mut self, other: &JitterTracker) {
        self.jitter.merge(&other.jitter);
        self.hist.merge(&other.hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_unit_produces_no_sample() {
        let mut j = JitterTracker::new();
        j.record_delay(100.0);
        assert_eq!(j.samples(), 0);
        assert!(j.quantile(0.99).is_none());
    }

    #[test]
    fn absolute_differences() {
        let mut j = JitterTracker::new();
        for d in [100.0, 150.0, 120.0, 120.0] {
            j.record_delay(d);
        }
        // samples: 50, 30, 0
        assert_eq!(j.samples(), 3);
        assert!((j.stats().mean() - 80.0 / 3.0).abs() < 1e-12);
        assert_eq!(j.stats().max(), Some(50.0));
        assert_eq!(j.stats().min(), Some(0.0));
        assert_eq!(j.histogram().count(), 3);
        assert_eq!(j.histogram().max(), 50);
    }

    #[test]
    fn constant_delay_zero_jitter() {
        let mut j = JitterTracker::new();
        for _ in 0..10 {
            j.record_delay(42.0);
        }
        assert_eq!(j.stats().mean(), 0.0);
        assert_eq!(j.stats().max(), Some(0.0));
        assert_eq!(j.quantile(1.0), Some(0));
    }

    #[test]
    fn merge_aggregates_connections() {
        let mut a = JitterTracker::new();
        a.record_delay(0.0);
        a.record_delay(10.0); // sample 10
        let mut b = JitterTracker::new();
        b.record_delay(5.0);
        b.record_delay(25.0); // sample 20
        a.merge_stats(&b);
        assert_eq!(a.samples(), 2);
        assert_eq!(a.stats().mean(), 15.0);
        assert_eq!(a.histogram().count(), 2);
        assert_eq!(a.histogram().max(), 20);
    }

    #[test]
    fn percentiles_come_from_the_histogram() {
        let mut j = JitterTracker::new();
        let mut d = 0.0;
        for i in 0..1000 {
            d += if i % 10 == 0 { 100.0 } else { 1.0 };
            j.record_delay(d);
        }
        // 10% of the samples are 100, the rest 1.
        assert_eq!(j.quantile(0.5), Some(1));
        let p99 = j.quantile(0.99).unwrap();
        assert!((90..=112).contains(&p99), "p99={p99}");
    }
}
