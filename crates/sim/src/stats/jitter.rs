//! Delay-jitter tracking.
//!
//! The paper (§5.2) measures jitter as "the variation in the delay
//! experienced by two adjacent [application data units] belonging to the
//! same connection": for consecutive delivered units with delays `d_i`,
//! jitter samples are `|d_i - d_{i-1}|`.

use super::Running;
use serde::{Deserialize, Serialize};

/// Tracks inter-unit delay jitter for one connection.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JitterTracker {
    last_delay: Option<f64>,
    jitter: Running,
}

impl JitterTracker {
    /// A fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the end-to-end delay of the next unit in sequence; after the
    /// first unit, every call contributes one jitter sample.
    pub fn record_delay(&mut self, delay: f64) {
        if let Some(prev) = self.last_delay {
            self.jitter.push((delay - prev).abs());
        }
        self.last_delay = Some(delay);
    }

    /// Jitter statistics accumulated so far.
    pub fn stats(&self) -> &Running {
        &self.jitter
    }

    /// Number of jitter samples (units delivered minus one, per connection).
    pub fn samples(&self) -> u64 {
        self.jitter.count()
    }

    /// Merge another tracker's accumulated samples (their `last_delay`
    /// chains stay independent — use only for cross-connection aggregation).
    pub fn merge_stats(&mut self, other: &JitterTracker) {
        self.jitter.merge(&other.jitter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_unit_produces_no_sample() {
        let mut j = JitterTracker::new();
        j.record_delay(100.0);
        assert_eq!(j.samples(), 0);
    }

    #[test]
    fn absolute_differences() {
        let mut j = JitterTracker::new();
        for d in [100.0, 150.0, 120.0, 120.0] {
            j.record_delay(d);
        }
        // samples: 50, 30, 0
        assert_eq!(j.samples(), 3);
        assert!((j.stats().mean() - 80.0 / 3.0).abs() < 1e-12);
        assert_eq!(j.stats().max(), Some(50.0));
        assert_eq!(j.stats().min(), Some(0.0));
    }

    #[test]
    fn constant_delay_zero_jitter() {
        let mut j = JitterTracker::new();
        for _ in 0..10 {
            j.record_delay(42.0);
        }
        assert_eq!(j.stats().mean(), 0.0);
        assert_eq!(j.stats().max(), Some(0.0));
    }

    #[test]
    fn merge_aggregates_connections() {
        let mut a = JitterTracker::new();
        a.record_delay(0.0);
        a.record_delay(10.0); // sample 10
        let mut b = JitterTracker::new();
        b.record_delay(5.0);
        b.record_delay(25.0); // sample 20
        a.merge_stats(&b);
        assert_eq!(a.samples(), 2);
        assert_eq!(a.stats().mean(), 15.0);
    }
}
