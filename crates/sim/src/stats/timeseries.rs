//! Fixed-window time series, used for utilization-over-time plots
//! (e.g. the Fig. 6 style bandwidth profile and crossbar occupancy traces).

use serde::{Deserialize, Serialize};

/// Accumulates samples into consecutive fixed-width windows and stores one
/// aggregate (sum and count) per window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowedSeries {
    window: u64,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl WindowedSeries {
    /// Create a series with the given window width (in whatever tick unit
    /// the caller uses; must be non-zero).
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "window must be non-zero");
        WindowedSeries {
            window,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Window width.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Record `value` at tick `t`.
    pub fn record(&mut self, t: u64, value: f64) {
        let idx = (t / self.window) as usize;
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
        }
        self.sums[idx] += value;
        self.counts[idx] += 1;
    }

    /// Number of windows touched so far.
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// True if no samples recorded.
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Per-window mean values (`NaN`-free: empty windows yield 0).
    pub fn means(&self) -> Vec<f64> {
        self.sums
            .iter()
            .zip(&self.counts)
            .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect()
    }

    /// Per-window sums.
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// Iterator of `(window_start_tick, sum)` pairs.
    pub fn iter_sums(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.sums
            .iter()
            .enumerate()
            .map(move |(i, &s)| (i as u64 * self.window, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_partition_ticks() {
        let mut s = WindowedSeries::new(10);
        s.record(0, 1.0);
        s.record(9, 1.0);
        s.record(10, 5.0);
        s.record(25, 3.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.sums(), &[2.0, 5.0, 3.0]);
        assert_eq!(s.means(), vec![1.0, 5.0, 3.0]);
    }

    #[test]
    fn empty_windows_are_zero() {
        let mut s = WindowedSeries::new(4);
        s.record(12, 2.0);
        assert_eq!(s.len(), 4);
        assert_eq!(s.means(), vec![0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn iter_sums_carries_window_starts() {
        let mut s = WindowedSeries::new(100);
        s.record(5, 1.0);
        s.record(250, 2.0);
        let pts: Vec<_> = s.iter_sums().collect();
        assert_eq!(pts, vec![(0, 1.0), (100, 0.0), (200, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_rejected() {
        WindowedSeries::new(0);
    }
}
