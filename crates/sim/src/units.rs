//! Bandwidth and data-size value types.
//!
//! Thin newtypes that keep Mbps/Kbps conversions out of the modelling code
//! and make connection descriptors self-documenting.

use serde::{Deserialize, Serialize};

/// A bandwidth, stored in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Bandwidth(pub f64);

impl Bandwidth {
    /// From bits per second.
    #[inline]
    pub const fn bps(v: f64) -> Self {
        Bandwidth(v)
    }
    /// From kilobits per second (10^3).
    #[inline]
    pub const fn kbps(v: f64) -> Self {
        Bandwidth(v * 1e3)
    }
    /// From megabits per second (10^6).
    #[inline]
    pub const fn mbps(v: f64) -> Self {
        Bandwidth(v * 1e6)
    }
    /// From gigabits per second (10^9).
    #[inline]
    pub const fn gbps(v: f64) -> Self {
        Bandwidth(v * 1e9)
    }
    /// Value in bits per second.
    #[inline]
    pub const fn as_bps(self) -> f64 {
        self.0
    }
    /// Value in megabits per second.
    #[inline]
    pub fn as_mbps(self) -> f64 {
        self.0 / 1e6
    }
    /// Fraction of `link` this bandwidth represents.
    #[inline]
    pub fn fraction_of(self, link: Bandwidth) -> f64 {
        self.0 / link.0
    }
}

impl core::ops::Add for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for Bandwidth {
    #[inline]
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl core::iter::Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        Bandwidth(iter.map(|b| b.0).sum())
    }
}

/// A data size, stored in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct DataSize(pub u64);

impl DataSize {
    /// From bits.
    #[inline]
    pub const fn bits(v: u64) -> Self {
        DataSize(v)
    }
    /// From kilobits (10^3).
    #[inline]
    pub const fn kbits(v: u64) -> Self {
        DataSize(v * 1_000)
    }
    /// Value in bits.
    #[inline]
    pub const fn as_bits(self) -> u64 {
        self.0
    }
    /// Number of flits of `flit_bits` needed to carry this payload
    /// (rounded up, at least 1 for non-empty payloads).
    #[inline]
    pub fn flits(self, flit_bits: u32) -> u64 {
        if self.0 == 0 {
            0
        } else {
            self.0.div_ceil(flit_bits as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversions() {
        assert_eq!(Bandwidth::kbps(64.0).as_bps(), 64_000.0);
        assert_eq!(Bandwidth::mbps(1.54).as_bps(), 1.54e6);
        assert_eq!(Bandwidth::gbps(1.24).as_mbps(), 1240.0);
        let frac = Bandwidth::mbps(55.0).fraction_of(Bandwidth::gbps(1.24));
        assert!((frac - 0.044355).abs() < 1e-6);
    }

    #[test]
    fn bandwidth_sums() {
        let total: Bandwidth = [
            Bandwidth::mbps(1.0),
            Bandwidth::mbps(2.0),
            Bandwidth::mbps(3.0),
        ]
        .into_iter()
        .sum();
        assert!((total.as_mbps() - 6.0).abs() < 1e-12);
        let mut b = Bandwidth::mbps(1.0);
        b += Bandwidth::mbps(0.5);
        assert!((b.as_mbps() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn datasize_flits_rounds_up() {
        assert_eq!(DataSize::bits(0).flits(1024), 0);
        assert_eq!(DataSize::bits(1).flits(1024), 1);
        assert_eq!(DataSize::bits(1024).flits(1024), 1);
        assert_eq!(DataSize::bits(1025).flits(1024), 2);
        assert_eq!(DataSize::kbits(100).flits(1024), 98); // 100_000 / 1024 = 97.66
    }
}
