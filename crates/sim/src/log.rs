//! Bounded event log for debugging simulations.
//!
//! Keeps the most recent `capacity` events in a ring buffer; recording is
//! O(1) and never allocates after construction, so logging can stay enabled
//! in tests without distorting timing-sensitive behaviour.
//!
//! Messages are formatted straight into a reusable byte buffer via
//! [`std::fmt::Arguments`] (`log.record(t, format_args!(...))`): no
//! `String` is built per event, and anything past the per-slot byte
//! budget is truncated rather than allocated for.  Rendering the retained
//! events back out ([`EventLog::entries`]) allocates, but that is a
//! dump-time operation, not a hot-path one.

use std::fmt::{self, Write as _};

/// Bytes reserved per event message; longer messages are truncated.
const SLOT_BYTES: usize = 120;

/// A `fmt::Write` sink over a fixed byte slice that truncates instead of
/// growing.  Truncation may split a multi-byte character; readers decode
/// lossily.
struct SliceWriter<'a> {
    buf: &'a mut [u8],
    len: usize,
}

impl fmt::Write for SliceWriter<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        let room = self.buf.len() - self.len;
        let take = s.len().min(room);
        self.buf[self.len..self.len + take].copy_from_slice(&s.as_bytes()[..take]);
        self.len += take;
        Ok(())
    }
}

/// A ring buffer of timestamped event messages backed by one flat,
/// reusable byte buffer.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    /// `capacity * SLOT_BYTES` bytes, one fixed slot per retained event.
    buf: Vec<u8>,
    /// Per retained event: (tick, message length in bytes).
    meta: Vec<(u64, u32)>,
    next: usize,
    enabled: bool,
}

impl EventLog {
    /// A log holding at most `capacity` events (0 disables logging).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            capacity,
            buf: vec![0; capacity * SLOT_BYTES],
            meta: Vec::with_capacity(capacity),
            next: 0,
            enabled: capacity > 0,
        }
    }

    /// A disabled log that drops everything.
    pub fn disabled() -> Self {
        EventLog::new(0)
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event, formatting `msg` into the slot's reusable byte
    /// buffer: enabled logging performs no heap allocation.  Call as
    /// `log.record(tick, format_args!("..."))` — the arguments are only
    /// rendered when logging is enabled, so hot paths pay one branch when
    /// disabled.
    #[inline]
    pub fn record(&mut self, tick: u64, msg: fmt::Arguments<'_>) {
        if !self.enabled {
            return;
        }
        let slot = self.next;
        let mut w = SliceWriter {
            buf: &mut self.buf[slot * SLOT_BYTES..(slot + 1) * SLOT_BYTES],
            len: 0,
        };
        // Formatting primitives through fmt::Arguments does not allocate;
        // the sink truncates at the slot budget instead of growing.
        let _ = w.write_fmt(msg);
        let entry = (tick, w.len as u32);
        if self.meta.len() < self.capacity {
            self.meta.push(entry);
        } else {
            self.meta[slot] = entry;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Events in chronological order (oldest retained first), rendered to
    /// owned strings.  Allocates — dump-time only.
    pub fn entries(&self) -> Vec<(u64, String)> {
        let render = |slot: usize| {
            let (tick, len) = self.meta[slot];
            let bytes = &self.buf[slot * SLOT_BYTES..slot * SLOT_BYTES + len as usize];
            (tick, String::from_utf8_lossy(bytes).into_owned())
        };
        if self.meta.len() < self.capacity {
            (0..self.meta.len()).map(render).collect()
        } else {
            (self.next..self.capacity)
                .chain(0..self.next)
                .map(render)
                .collect()
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// True if nothing retained.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent() {
        let mut log = EventLog::new(3);
        for t in 0..5u64 {
            log.record(t, format_args!("e{t}"));
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0], (2, "e2".to_string()));
        assert_eq!(entries[2], (4, "e4".to_string()));
    }

    #[test]
    fn disabled_drops_everything() {
        let mut log = EventLog::disabled();
        log.record(0, format_args!("x"));
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn under_capacity_in_order() {
        let mut log = EventLog::new(10);
        log.record(1, format_args!("a"));
        log.record(2, format_args!("b"));
        assert_eq!(log.len(), 2);
        assert_eq!(log.entries()[1].1, "b");
    }

    #[test]
    fn oversized_messages_truncate_not_grow() {
        let mut log = EventLog::new(2);
        let long = "x".repeat(SLOT_BYTES * 3);
        log.record(9, format_args!("{long}"));
        let entries = log.entries();
        assert_eq!(entries[0].0, 9);
        assert_eq!(entries[0].1.len(), SLOT_BYTES);
        assert!(entries[0].1.chars().all(|c| c == 'x'));
    }

    #[test]
    fn formatted_values_render() {
        let mut log = EventLog::new(4);
        log.record(3, format_args!("grant {}->{} vc {}", 1, 2, 7));
        assert_eq!(log.entries()[0].1, "grant 1->2 vc 7");
    }
}
