//! Bounded event log for debugging simulations.
//!
//! Keeps the most recent `capacity` events in a ring buffer; recording is
//! O(1) and never allocates after construction, so logging can stay enabled
//! in tests without distorting timing-sensitive behaviour.

/// A ring buffer of timestamped event strings.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    events: Vec<(u64, String)>,
    next: usize,
    enabled: bool,
}

impl EventLog {
    /// A log holding at most `capacity` events (0 disables logging).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            capacity,
            events: Vec::with_capacity(capacity),
            next: 0,
            enabled: capacity > 0,
        }
    }

    /// A disabled log that drops everything.
    pub fn disabled() -> Self {
        EventLog::new(0)
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event; the closure is only evaluated when logging is
    /// enabled, so hot paths pay nothing when disabled.
    #[inline]
    pub fn record<F: FnOnce() -> String>(&mut self, tick: u64, f: F) {
        if !self.enabled {
            return;
        }
        let entry = (tick, f());
        if self.events.len() < self.capacity {
            self.events.push(entry);
        } else {
            self.events[self.next] = entry;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Events in chronological order (oldest retained first).
    pub fn entries(&self) -> Vec<(u64, String)> {
        if self.events.len() < self.capacity {
            self.events.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.events[self.next..]);
            out.extend_from_slice(&self.events[..self.next]);
            out
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent() {
        let mut log = EventLog::new(3);
        for t in 0..5u64 {
            log.record(t, || format!("e{t}"));
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0], (2, "e2".to_string()));
        assert_eq!(entries[2], (4, "e4".to_string()));
    }

    #[test]
    fn disabled_drops_and_skips_closure() {
        let mut log = EventLog::disabled();
        let mut evaluated = false;
        log.record(0, || {
            evaluated = true;
            String::new()
        });
        assert!(!evaluated);
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn under_capacity_in_order() {
        let mut log = EventLog::new(10);
        log.record(1, || "a".into());
        log.record(2, || "b".into());
        assert_eq!(log.len(), 2);
        assert_eq!(log.entries()[1].1, "b");
    }
}
