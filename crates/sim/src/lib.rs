//! # mmr-sim — simulation substrate for the Multimedia Router reproduction
//!
//! This crate provides the foundations every other crate in the workspace
//! builds on:
//!
//! * [`time`] — the MMR's two-level time model (router/phit cycles grouped
//!   into flit cycles) plus conversions to wall-clock units derived from the
//!   link rate.
//! * [`rng`] — a small, fully deterministic `xoshiro256**` generator with
//!   stream splitting, so every experiment is reproducible from a single
//!   seed without depending on platform RNG state.
//! * [`stats`] — streaming statistics (Welford mean/variance, min/max,
//!   log-bucket histograms with percentile queries, inter-sample jitter,
//!   windowed time series).
//! * [`engine`] — a tiny cycle-driven engine: a [`engine::CycleModel`] is
//!   stepped one flit cycle at a time with warm-up handling and stop
//!   conditions.
//! * [`log`] — a bounded event ring buffer used for debugging simulations.
//! * [`telemetry`] — the zero-overhead observability substrate: a masked
//!   counter [`telemetry::Registry`], a [`telemetry::Clock`]-injected
//!   per-stage profiler, the binary [`telemetry::FlightRecorder`], and
//!   pre-allocated snapshot buffers.
//! * [`fault`] — deterministic fault schedules ([`fault::FaultPlan`]):
//!   seeded, cycle-stamped fault events for chaos experiments that replay
//!   bit-for-bit.
//!
//! The simulator is deliberately single-threaded and allocation-light: the
//! experiment layer above it (in `mmr-core`) parallelizes across independent
//! simulation *instances* instead, which keeps each instance deterministic.

#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod log;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod units;

pub use engine::{CycleModel, RunOutcome, Runner, StopCondition};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultPlanConfig};
pub use rng::SimRng;
pub use time::{FlitCycle, RouterCycle, TimeBase};
pub use units::{Bandwidth, DataSize};
