//! Deterministic random number generation.
//!
//! Experiments must be reproducible from a single seed across platforms and
//! library versions, so the simulator carries its own `xoshiro256**`
//! implementation (public domain algorithm by Blackman & Vigna) instead of
//! relying on external RNG crates.

/// A `xoshiro256**` generator.
///
/// Fast, 256-bit state, passes BigCrush; more than adequate for driving
/// traffic models and arbitration tie-breaks.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.  The state is expanded with
    /// SplitMix64 as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent stream for a subcomponent.
    ///
    /// Mixing the stream id through SplitMix64 before reseeding gives
    /// decorrelated streams for, e.g., each traffic source, so adding a
    /// source never perturbs the randomness seen by the others.
    pub fn split(&self, stream: u64) -> SimRng {
        let mut sm = self.s[0] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let mixed = splitmix64(&mut sm) ^ self.s[3].rotate_left(17);
        SimRng::seed_from_u64(mixed)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.  Uses Lemire's unbiased multiply-shift
    /// rejection method.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let mut x = self.next_u64_raw();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64_raw();
                m = (x as u128).wrapping_mul(n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Standard normal deviate (Marsaglia polar method).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Log-normal deviate with the given mean and standard deviation of the
    /// *underlying normal*.
    #[inline]
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Exponential deviate with the given mean.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.next_u64_raw() == b.next_u64_raw())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_decorrelated() {
        let root = SimRng::seed_from_u64(7);
        let mut s1 = root.split(0);
        let mut s2 = root.split(1);
        let same = (0..256)
            .filter(|_| s1.next_u64_raw() == s2.next_u64_raw())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SimRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 50_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.standard_normal();
            s += x;
            s2 += x * x;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::seed_from_u64(13);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from_u64(17);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }
}
