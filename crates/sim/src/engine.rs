//! Cycle-driven simulation engine.
//!
//! The MMR pipeline advances in lock-step once per flit cycle, so a simple
//! step loop is the right engine shape (no event queue needed).  The engine
//! adds the two pieces every experiment needs: warm-up (statistics are
//! discarded until the system reaches steady state) and stop conditions.

use crate::time::FlitCycle;

/// A model that can be stepped one flit cycle at a time.
pub trait CycleModel {
    /// Advance the model by one flit cycle.  `now` is the cycle being
    /// executed (starting at 0) and `measuring` is false during warm-up —
    /// models should skip statistics updates while it is false.
    fn step(&mut self, now: FlitCycle, measuring: bool);

    /// Called once when measurement starts (end of warm-up), letting the
    /// model reset any counters that accumulated during warm-up.
    fn on_measurement_start(&mut self, _now: FlitCycle) {}

    /// Optional early-exit hook checked after each step; return true when
    /// the model has delivered everything it wants to measure.
    fn is_done(&self, _now: FlitCycle) -> bool {
        false
    }

    /// The next cycle at which this model can possibly change state,
    /// given that cycle `now` has just executed.  The engine may skip
    /// every cycle in `now+1 .. next_event(now)` via
    /// [`skip_quiescent`](CycleModel::skip_quiescent) instead of stepping
    /// them.
    ///
    /// Contract (see DESIGN.md §12): reporting **too early** a horizon is
    /// always safe — the engine simply executes a quiescent cycle, which
    /// must be indistinguishable from skipping it.  Reporting **too
    /// late** is a correctness bug: a state change inside the skipped
    /// gap would be lost.  `is_done` must not change across cycles the
    /// model reports as skippable.  The default never skips.
    fn next_event(&self, now: FlitCycle) -> FlitCycle {
        FlitCycle(now.0 + 1)
    }

    /// Bulk-advance the model across `n` quiescent cycles starting at
    /// `from` (all strictly inside the gap promised by
    /// [`next_event`](CycleModel::next_event)).  Implementations must
    /// leave the model in exactly the state `n` executed quiescent steps
    /// would have produced — including statistics epochs and telemetry
    /// windows — in O(1) or O(components), never O(n) per-cycle work.
    fn skip_quiescent(&mut self, _from: FlitCycle, _n: u64, _measuring: bool) {}
}

/// When to stop a run (in addition to the model's own `is_done`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// Stop after exactly this many flit cycles.
    Cycles(u64),
    /// Run until the model reports done, but never past this bound.
    ModelDoneOrCycles(u64),
}

/// Outcome of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Number of flit cycles the model advanced through (stepped plus
    /// skipped) — identical between [`Runner::run`] and
    /// [`Runner::run_horizon`] on the same model.
    pub executed: u64,
    /// Cycles that counted toward measurement (post-warm-up).
    pub measured: u64,
    /// Cycles fast-forwarded via [`CycleModel::skip_quiescent`] rather
    /// than stepped (always zero under [`Runner::run`]).
    pub skipped: u64,
    /// True if the run ended because the model reported done (as opposed
    /// to exhausting the cycle budget).
    pub model_finished: bool,
}

/// Drives a [`CycleModel`] with warm-up handling.
#[derive(Debug, Clone)]
pub struct Runner {
    warmup: u64,
    stop: StopCondition,
}

impl Runner {
    /// A runner with `warmup` warm-up flit cycles and the given stop
    /// condition.
    pub fn new(warmup: u64, stop: StopCondition) -> Self {
        Runner { warmup, stop }
    }

    /// Run the model to completion.
    pub fn run<M: CycleModel>(&self, model: &mut M) -> RunOutcome {
        let bound = match self.stop {
            StopCondition::Cycles(n) | StopCondition::ModelDoneOrCycles(n) => n,
        };
        let check_done = matches!(self.stop, StopCondition::ModelDoneOrCycles(_));
        let mut measured = 0;
        let mut executed = 0;
        let mut model_finished = false;
        for t in 0..bound {
            let now = FlitCycle(t);
            let measuring = t >= self.warmup;
            if t == self.warmup {
                model.on_measurement_start(now);
            }
            model.step(now, measuring);
            executed += 1;
            if measuring {
                measured += 1;
            }
            if check_done && model.is_done(now) {
                model_finished = true;
                break;
            }
        }
        RunOutcome {
            executed,
            measured,
            skipped: 0,
            model_finished,
        }
    }

    /// Run the model to completion with event-horizon fast-forwarding.
    ///
    /// After each executed cycle the model is asked for its next possible
    /// state change ([`CycleModel::next_event`]); the gap up to it is
    /// bulk-advanced in one [`CycleModel::skip_quiescent`] call instead
    /// of being stepped cycle by cycle.  The measurement boundary is
    /// never skipped across, so [`CycleModel::on_measurement_start`]
    /// fires on exactly the same cycle as under [`Runner::run`].  For a
    /// model honouring the horizon contract the outcome (and the model's
    /// final state) is bit-identical to [`Runner::run`].
    pub fn run_horizon<M: CycleModel>(&self, model: &mut M) -> RunOutcome {
        let bound = match self.stop {
            StopCondition::Cycles(n) | StopCondition::ModelDoneOrCycles(n) => n,
        };
        let check_done = matches!(self.stop, StopCondition::ModelDoneOrCycles(_));
        let mut measured = 0;
        let mut executed = 0;
        let mut skipped = 0;
        let mut model_finished = false;
        let mut t = 0u64;
        while t < bound {
            let now = FlitCycle(t);
            let measuring = t >= self.warmup;
            if t == self.warmup {
                model.on_measurement_start(now);
            }
            model.step(now, measuring);
            executed += 1;
            if measuring {
                measured += 1;
            }
            if check_done && model.is_done(now) {
                model_finished = true;
                break;
            }
            let mut target = model.next_event(now).0.max(t + 1).min(bound);
            if t < self.warmup {
                // Never skip across the measurement boundary: cycle
                // `warmup` itself must execute so on_measurement_start
                // fires there, exactly as in the naive loop.
                target = target.min(self.warmup);
            }
            let gap = target - (t + 1);
            if gap > 0 {
                let gap_measuring = t + 1 >= self.warmup;
                model.skip_quiescent(FlitCycle(t + 1), gap, gap_measuring);
                executed += gap;
                skipped += gap;
                if gap_measuring {
                    measured += gap;
                }
            }
            t = target;
        }
        RunOutcome {
            executed,
            measured,
            skipped,
            model_finished,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        steps: u64,
        measured_steps: u64,
        reset_at: Option<u64>,
        done_after: Option<u64>,
    }

    impl CycleModel for Counter {
        fn step(&mut self, _now: FlitCycle, measuring: bool) {
            self.steps += 1;
            if measuring {
                self.measured_steps += 1;
            }
        }
        fn on_measurement_start(&mut self, now: FlitCycle) {
            self.reset_at = Some(now.0);
        }
        fn is_done(&self, now: FlitCycle) -> bool {
            self.done_after.is_some_and(|d| now.0 >= d)
        }
    }

    fn counter(done_after: Option<u64>) -> Counter {
        Counter {
            steps: 0,
            measured_steps: 0,
            reset_at: None,
            done_after,
        }
    }

    #[test]
    fn fixed_cycles_run_exactly() {
        let mut m = counter(None);
        let out = Runner::new(10, StopCondition::Cycles(100)).run(&mut m);
        assert_eq!(out.executed, 100);
        assert_eq!(out.measured, 90);
        assert_eq!(m.steps, 100);
        assert_eq!(m.measured_steps, 90);
        assert_eq!(m.reset_at, Some(10));
        assert!(!out.model_finished);
    }

    #[test]
    fn model_done_stops_early() {
        let mut m = counter(Some(42));
        let out = Runner::new(0, StopCondition::ModelDoneOrCycles(1000)).run(&mut m);
        assert_eq!(out.executed, 43); // cycles 0..=42
        assert!(out.model_finished);
    }

    #[test]
    fn model_done_bounded_by_budget() {
        let mut m = counter(Some(10_000));
        let out = Runner::new(0, StopCondition::ModelDoneOrCycles(50)).run(&mut m);
        assert_eq!(out.executed, 50);
        assert!(!out.model_finished);
    }

    #[test]
    fn warmup_longer_than_run_measures_nothing() {
        let mut m = counter(None);
        let out = Runner::new(1000, StopCondition::Cycles(10)).run(&mut m);
        assert_eq!(out.measured, 0);
        assert_eq!(m.reset_at, None);
    }

    /// A model that can only change state at multiples of `period`.
    struct Periodic {
        period: u64,
        stepped: Vec<u64>,
        skips: Vec<(u64, u64, bool)>,
        advanced: u64,
        measured_cycles: u64,
        reset_at: Option<u64>,
    }

    impl Periodic {
        fn new(period: u64) -> Self {
            Periodic {
                period,
                stepped: Vec::new(),
                skips: Vec::new(),
                advanced: 0,
                measured_cycles: 0,
                reset_at: None,
            }
        }
    }

    impl CycleModel for Periodic {
        fn step(&mut self, now: FlitCycle, measuring: bool) {
            self.stepped.push(now.0);
            self.advanced += 1;
            if measuring {
                self.measured_cycles += 1;
            }
        }
        fn on_measurement_start(&mut self, now: FlitCycle) {
            self.reset_at = Some(now.0);
        }
        fn next_event(&self, now: FlitCycle) -> FlitCycle {
            FlitCycle((now.0 / self.period + 1) * self.period)
        }
        fn skip_quiescent(&mut self, from: FlitCycle, n: u64, measuring: bool) {
            self.skips.push((from.0, n, measuring));
            self.advanced += n;
            if measuring {
                self.measured_cycles += n;
            }
        }
    }

    #[test]
    fn horizon_accounting_matches_naive() {
        let mut m = Periodic::new(7);
        let out = Runner::new(10, StopCondition::Cycles(100)).run_horizon(&mut m);
        // Same totals the naive loop reports, however the cycles were
        // covered.
        assert_eq!(out.executed, 100);
        assert_eq!(out.measured, 90);
        assert_eq!(m.advanced, 100);
        assert_eq!(m.measured_cycles, 90);
        assert_eq!(out.skipped + m.stepped.len() as u64, 100);
        assert!(out.skipped > 0);
        // Every skipped span sits strictly between two events and never
        // covers a multiple of the period (a possible state change).
        for &(from, n, _) in &m.skips {
            for c in from..from + n {
                assert!(!c.is_multiple_of(7), "skipped active cycle {c}");
            }
        }
    }

    #[test]
    fn horizon_never_skips_the_measurement_boundary() {
        // Warm-up ends at cycle 10, inside the quiescent gap 8..14: the
        // engine must still execute cycle 10 so the reset fires there.
        let mut m = Periodic::new(7);
        Runner::new(10, StopCondition::Cycles(100)).run_horizon(&mut m);
        assert_eq!(m.reset_at, Some(10));
        assert!(m.stepped.contains(&10));
        // No pre-warm-up span is flagged as measuring and vice versa.
        for &(from, n, measuring) in &m.skips {
            assert_eq!(measuring, from >= 10);
            assert!(from + n <= 10 || from >= 10, "span straddles warm-up");
        }
    }

    #[test]
    fn horizon_skip_clamped_to_bound() {
        let mut m = Periodic::new(64);
        let out = Runner::new(0, StopCondition::Cycles(100)).run_horizon(&mut m);
        assert_eq!(out.executed, 100);
        assert_eq!(m.stepped, vec![0, 64]);
        assert_eq!(out.skipped, 98);
    }

    #[test]
    fn horizon_with_default_hooks_equals_naive() {
        // A model that never reports a horizon degrades to the naive
        // loop, early exit included.
        for done in [None, Some(42), Some(10_000)] {
            let mut a = counter(done);
            let mut b = counter(done);
            let runner = Runner::new(5, StopCondition::ModelDoneOrCycles(1000));
            let naive = runner.run(&mut a);
            let horizon = runner.run_horizon(&mut b);
            assert_eq!(naive, horizon);
            assert_eq!(horizon.skipped, 0);
            assert_eq!(a.steps, b.steps);
            assert_eq!(a.measured_steps, b.measured_steps);
        }
    }
}
