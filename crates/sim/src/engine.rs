//! Cycle-driven simulation engine.
//!
//! The MMR pipeline advances in lock-step once per flit cycle, so a simple
//! step loop is the right engine shape (no event queue needed).  The engine
//! adds the two pieces every experiment needs: warm-up (statistics are
//! discarded until the system reaches steady state) and stop conditions.

use crate::time::FlitCycle;

/// A model that can be stepped one flit cycle at a time.
pub trait CycleModel {
    /// Advance the model by one flit cycle.  `now` is the cycle being
    /// executed (starting at 0) and `measuring` is false during warm-up —
    /// models should skip statistics updates while it is false.
    fn step(&mut self, now: FlitCycle, measuring: bool);

    /// Called once when measurement starts (end of warm-up), letting the
    /// model reset any counters that accumulated during warm-up.
    fn on_measurement_start(&mut self, _now: FlitCycle) {}

    /// Optional early-exit hook checked after each step; return true when
    /// the model has delivered everything it wants to measure.
    fn is_done(&self, _now: FlitCycle) -> bool {
        false
    }
}

/// When to stop a run (in addition to the model's own `is_done`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// Stop after exactly this many flit cycles.
    Cycles(u64),
    /// Run until the model reports done, but never past this bound.
    ModelDoneOrCycles(u64),
}

/// Outcome of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Number of flit cycles actually executed.
    pub executed: u64,
    /// Cycles that counted toward measurement (post-warm-up).
    pub measured: u64,
    /// True if the run ended because the model reported done (as opposed
    /// to exhausting the cycle budget).
    pub model_finished: bool,
}

/// Drives a [`CycleModel`] with warm-up handling.
#[derive(Debug, Clone)]
pub struct Runner {
    warmup: u64,
    stop: StopCondition,
}

impl Runner {
    /// A runner with `warmup` warm-up flit cycles and the given stop
    /// condition.
    pub fn new(warmup: u64, stop: StopCondition) -> Self {
        Runner { warmup, stop }
    }

    /// Run the model to completion.
    pub fn run<M: CycleModel>(&self, model: &mut M) -> RunOutcome {
        let bound = match self.stop {
            StopCondition::Cycles(n) | StopCondition::ModelDoneOrCycles(n) => n,
        };
        let check_done = matches!(self.stop, StopCondition::ModelDoneOrCycles(_));
        let mut measured = 0;
        let mut executed = 0;
        let mut model_finished = false;
        for t in 0..bound {
            let now = FlitCycle(t);
            let measuring = t >= self.warmup;
            if t == self.warmup {
                model.on_measurement_start(now);
            }
            model.step(now, measuring);
            executed += 1;
            if measuring {
                measured += 1;
            }
            if check_done && model.is_done(now) {
                model_finished = true;
                break;
            }
        }
        RunOutcome {
            executed,
            measured,
            model_finished,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        steps: u64,
        measured_steps: u64,
        reset_at: Option<u64>,
        done_after: Option<u64>,
    }

    impl CycleModel for Counter {
        fn step(&mut self, _now: FlitCycle, measuring: bool) {
            self.steps += 1;
            if measuring {
                self.measured_steps += 1;
            }
        }
        fn on_measurement_start(&mut self, now: FlitCycle) {
            self.reset_at = Some(now.0);
        }
        fn is_done(&self, now: FlitCycle) -> bool {
            self.done_after.is_some_and(|d| now.0 >= d)
        }
    }

    fn counter(done_after: Option<u64>) -> Counter {
        Counter {
            steps: 0,
            measured_steps: 0,
            reset_at: None,
            done_after,
        }
    }

    #[test]
    fn fixed_cycles_run_exactly() {
        let mut m = counter(None);
        let out = Runner::new(10, StopCondition::Cycles(100)).run(&mut m);
        assert_eq!(out.executed, 100);
        assert_eq!(out.measured, 90);
        assert_eq!(m.steps, 100);
        assert_eq!(m.measured_steps, 90);
        assert_eq!(m.reset_at, Some(10));
        assert!(!out.model_finished);
    }

    #[test]
    fn model_done_stops_early() {
        let mut m = counter(Some(42));
        let out = Runner::new(0, StopCondition::ModelDoneOrCycles(1000)).run(&mut m);
        assert_eq!(out.executed, 43); // cycles 0..=42
        assert!(out.model_finished);
    }

    #[test]
    fn model_done_bounded_by_budget() {
        let mut m = counter(Some(10_000));
        let out = Runner::new(0, StopCondition::ModelDoneOrCycles(50)).run(&mut m);
        assert_eq!(out.executed, 50);
        assert!(!out.model_finished);
    }

    #[test]
    fn warmup_longer_than_run_measures_nothing() {
        let mut m = counter(None);
        let out = Runner::new(1000, StopCondition::Cycles(10)).run(&mut m);
        assert_eq!(out.measured, 0);
        assert_eq!(m.reset_at, None);
    }
}
