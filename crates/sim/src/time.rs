//! The MMR time model.
//!
//! The MMR splits time hierarchically (paper §2 "Switch Organization"):
//!
//! * a **router cycle** (also *phit cycle*) is the time to move one phit —
//!   the physical transfer unit — across a link;
//! * a **flit cycle** is the time to move one flit (the flow-control unit)
//!   through the router and across the link.  One flit is many phits, so a
//!   flit cycle is an integer number of router cycles;
//! * flit cycles are grouped into **rounds** (frames) for bandwidth
//!   reservation; a connection reserves an integer number of flit-cycle
//!   *slots* per round.
//!
//! All simulation state is kept in integer router cycles; wall-clock
//! conversions go through a [`TimeBase`].

use serde::{Deserialize, Serialize};

/// A point in time or a duration, measured in router (phit) cycles.
///
/// This is the finest-grained clock in the simulator; queuing-delay counters
/// used by the SIABP priority function tick in router cycles.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RouterCycle(pub u64);

/// A point in time or a duration, measured in flit cycles.
///
/// The router pipeline (link scheduling, switch scheduling, crossbar
/// traversal) advances once per flit cycle.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FlitCycle(pub u64);

impl RouterCycle {
    /// Zero cycles.
    pub const ZERO: RouterCycle = RouterCycle(0);

    /// Saturating subtraction, useful for delays where clock skew could
    /// otherwise underflow.
    #[inline]
    pub fn saturating_sub(self, rhs: RouterCycle) -> RouterCycle {
        RouterCycle(self.0.saturating_sub(rhs.0))
    }
}

impl FlitCycle {
    /// Zero cycles.
    pub const ZERO: FlitCycle = FlitCycle(0);
}

impl core::ops::Add for RouterCycle {
    type Output = RouterCycle;
    #[inline]
    fn add(self, rhs: RouterCycle) -> RouterCycle {
        RouterCycle(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for RouterCycle {
    #[inline]
    fn add_assign(&mut self, rhs: RouterCycle) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub for RouterCycle {
    type Output = RouterCycle;
    #[inline]
    fn sub(self, rhs: RouterCycle) -> RouterCycle {
        RouterCycle(self.0 - rhs.0)
    }
}

impl core::ops::Add for FlitCycle {
    type Output = FlitCycle;
    #[inline]
    fn add(self, rhs: FlitCycle) -> FlitCycle {
        FlitCycle(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for FlitCycle {
    #[inline]
    fn add_assign(&mut self, rhs: FlitCycle) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub for FlitCycle {
    type Output = FlitCycle;
    #[inline]
    fn sub(self, rhs: FlitCycle) -> FlitCycle {
        FlitCycle(self.0 - rhs.0)
    }
}

/// Physical time base: link rate, phit and flit widths, and the derived
/// cycle durations.
///
/// Defaults follow the paper (§2, §5 and the companion MMR papers): a
/// 1.24 Gbps, 16-bit-wide link with 1024-bit flits, giving a ~12.9 ns router
/// cycle and a ~826 ns flit cycle (64 router cycles).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeBase {
    /// Link rate in bits per second.
    pub link_bits_per_sec: f64,
    /// Phit (physical transfer unit) width in bits; one phit moves per
    /// router cycle.
    pub phit_bits: u32,
    /// Flit (flow control unit) width in bits; must be a multiple of
    /// `phit_bits`.
    pub flit_bits: u32,
}

impl Default for TimeBase {
    fn default() -> Self {
        TimeBase {
            link_bits_per_sec: 1.24e9,
            phit_bits: 16,
            flit_bits: 1024,
        }
    }
}

impl TimeBase {
    /// Construct a time base, checking that the flit is a whole number of
    /// phits.
    pub fn new(link_bits_per_sec: f64, phit_bits: u32, flit_bits: u32) -> Self {
        assert!(phit_bits > 0 && flit_bits > 0, "widths must be positive");
        assert!(
            flit_bits.is_multiple_of(phit_bits),
            "flit width ({flit_bits}) must be a multiple of phit width ({phit_bits})"
        );
        assert!(link_bits_per_sec > 0.0, "link rate must be positive");
        TimeBase {
            link_bits_per_sec,
            phit_bits,
            flit_bits,
        }
    }

    /// Number of router (phit) cycles in one flit cycle.
    #[inline]
    pub fn router_cycles_per_flit(&self) -> u64 {
        (self.flit_bits / self.phit_bits) as u64
    }

    /// Duration of one router cycle in seconds.
    #[inline]
    pub fn router_cycle_secs(&self) -> f64 {
        self.phit_bits as f64 / self.link_bits_per_sec
    }

    /// Duration of one flit cycle in seconds.
    #[inline]
    pub fn flit_cycle_secs(&self) -> f64 {
        self.flit_bits as f64 / self.link_bits_per_sec
    }

    /// Convert a flit-cycle timestamp to router cycles.
    #[inline]
    pub fn to_router(&self, t: FlitCycle) -> RouterCycle {
        RouterCycle(t.0 * self.router_cycles_per_flit())
    }

    /// Convert a router-cycle count to microseconds.
    #[inline]
    pub fn router_cycles_to_us(&self, c: RouterCycle) -> f64 {
        c.0 as f64 * self.router_cycle_secs() * 1e6
    }

    /// Convert a duration in seconds to whole router cycles (rounded to
    /// nearest).
    #[inline]
    pub fn secs_to_router_cycles(&self, secs: f64) -> RouterCycle {
        RouterCycle((secs / self.router_cycle_secs()).round() as u64)
    }

    /// Convert a duration in seconds to whole flit cycles (rounded to
    /// nearest, at least 1 for positive durations).
    #[inline]
    pub fn secs_to_flit_cycles(&self, secs: f64) -> FlitCycle {
        let c = (secs / self.flit_cycle_secs()).round() as u64;
        FlitCycle(c.max(if secs > 0.0 { 1 } else { 0 }))
    }

    /// Inter-arrival time, in router cycles, of flits of a connection with
    /// the given average bandwidth.
    ///
    /// A connection with bandwidth `b` injects one `flit_bits` flit every
    /// `flit_bits / b` seconds.
    #[inline]
    pub fn flit_iat_router_cycles(&self, bits_per_sec: f64) -> f64 {
        assert!(bits_per_sec > 0.0);
        (self.flit_bits as f64 / bits_per_sec) / self.router_cycle_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_geometry() {
        let tb = TimeBase::default();
        assert_eq!(tb.router_cycles_per_flit(), 64);
        // ~826 ns flit cycle on a 1.24 Gbps link
        let flit_ns = tb.flit_cycle_secs() * 1e9;
        assert!((flit_ns - 825.8).abs() < 1.0, "flit cycle {flit_ns} ns");
        // a phit takes "a few nanoseconds"
        let phit_ns = tb.router_cycle_secs() * 1e9;
        assert!(phit_ns > 5.0 && phit_ns < 20.0, "phit cycle {phit_ns} ns");
    }

    #[test]
    fn conversions_roundtrip() {
        let tb = TimeBase::default();
        assert_eq!(tb.to_router(FlitCycle(3)), RouterCycle(192));
        let us = tb.router_cycles_to_us(RouterCycle(64));
        assert!((us - 0.8258).abs() < 0.01);
        assert_eq!(
            tb.secs_to_router_cycles(tb.router_cycle_secs() * 10.0),
            RouterCycle(10)
        );
    }

    #[test]
    fn iat_for_cbr_classes() {
        let tb = TimeBase::default();
        // 55 Mbps: one 1024-bit flit every ~18.6 us -> ~1443 router cycles
        let iat = tb.flit_iat_router_cycles(55e6);
        assert!((iat - 1443.0).abs() < 5.0, "iat = {iat}");
        // low-bandwidth class is very sparse
        assert!(tb.flit_iat_router_cycles(64e3) > 1e6);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_fractional_phits() {
        TimeBase::new(1e9, 10, 1024);
    }

    #[test]
    fn arithmetic_ops() {
        assert_eq!(RouterCycle(5) + RouterCycle(3), RouterCycle(8));
        assert_eq!(RouterCycle(5) - RouterCycle(3), RouterCycle(2));
        assert_eq!(
            RouterCycle(3).saturating_sub(RouterCycle(5)),
            RouterCycle(0)
        );
        let mut t = FlitCycle(1);
        t += FlitCycle(2);
        assert_eq!(t, FlitCycle(3));
        assert_eq!(FlitCycle(7) - FlitCycle(2), FlitCycle(5));
    }
}
