//! Video streaming: route a mix of MPEG-2 streams (the paper's §5.2
//! workload) through the MMR and report the QoS the *application* sees —
//! frame delays and jitter — under both injection models.
//!
//! ```sh
//! cargo run --release --example video_streaming
//! ```

use mmr_core::arbiter::scheduler::ArbiterKind;
use mmr_core::config::{InjectionKind, RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::run_experiment;
use mmr_core::scenarios::vbr_cycle_budget;

fn main() {
    println!("MPEG-2 streaming through the MMR at 70% generated load\n");
    println!(
        "{:<9} {:>12} {:>18} {:>17} {:>16}",
        "model", "frames", "mean delay(µs)", "max delay(µs)", "mean jitter(µs)"
    );
    for injection in [InjectionKind::SmoothRate, InjectionKind::BackToBack] {
        let gops = 2;
        let cfg = SimConfig {
            workload: WorkloadSpec::Vbr {
                target_load: 0.7,
                gops,
                injection,
                enforce_peak: false,
            },
            arbiter: ArbiterKind::Coa,
            warmup_cycles: 0,
            run: RunLength::UntilDrained {
                max_cycles: vbr_cycle_budget(gops),
            },
            ..Default::default()
        };
        let r = run_experiment(&cfg);
        let m = &r.summary.metrics;
        println!(
            "{:<9} {:>12} {:>18.1} {:>17.1} {:>16.2}",
            injection.label(),
            m.frames_delivered,
            m.mean_frame_delay_us,
            m.max_frame_delay_us,
            m.mean_frame_jitter_us
        );
        assert!(r.drained, "all four GOPs should drain at 70% load");
    }
    println!(
        "\nMPEG-2 playback tolerates several *milliseconds* of jitter (§5.2);\n\
         the MMR keeps it in the microsecond range, so no frame misses its\n\
         33 ms display slot."
    );
}
