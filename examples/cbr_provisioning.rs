//! Provisioning walkthrough: how the MMR's connection admission control
//! (paper §2, "Connection Set up") books link bandwidth in flit-cycle
//! slots per round, and what happens to requests that do not fit.
//!
//! ```sh
//! cargo run --release --example cbr_provisioning
//! ```

use mmr_core::sim::time::TimeBase;
use mmr_core::sim::units::Bandwidth;
use mmr_core::traffic::admission::{AdmissionControl, RoundConfig};

fn main() {
    let tb = TimeBase::default();
    let round = RoundConfig::default();
    println!(
        "link: {:.2} Gbps, round = {} flit-cycle slots, slot granularity = {:.1} Kbps\n",
        tb.link_bits_per_sec / 1e9,
        round.cycles_per_round,
        round.slot_bandwidth(&tb).as_bps() / 1e3
    );

    let mut cac = AdmissionControl::new(4, round, tb);
    let requests = [
        ("audio (64 Kbps)", Bandwidth::kbps(64.0)),
        ("T1 video conf (1.54 Mbps)", Bandwidth::mbps(1.54)),
        ("studio video (55 Mbps)", Bandwidth::mbps(55.0)),
    ];
    println!("{:<28} {:>8} {:>12}", "connection", "slots", "link share");
    for (name, bw) in requests {
        let slots = cac.reserved_slots(bw);
        println!(
            "{:<28} {:>8} {:>11.2}%",
            name,
            slots,
            slots as f64 / round.cycles_per_round as f64 * 100.0
        );
    }

    // Book 55 Mbps connections on link 0 -> 0 until the round is full.
    println!("\nfilling input 0 / output 0 with 55 Mbps connections:");
    let bw = Bandwidth::mbps(55.0);
    let mut n = 0;
    loop {
        match cac.admit(0, 0, bw, bw) {
            Ok(_) => n += 1,
            Err(e) => {
                println!("  connection #{} rejected: {e}", n + 1);
                break;
            }
        }
    }
    println!(
        "  {n} connections admitted, input-0 load now {:.1}%",
        cac.input_load(0) * 100.0
    );

    // The residual capacity still carries low-rate traffic.
    let audio = Bandwidth::kbps(64.0);
    let mut extra = 0;
    while cac.admit(0, 0, audio, audio).is_ok() {
        extra += 1;
    }
    println!(
        "  plus {extra} audio connections in the residual slots ({:.1}% final load)",
        cac.input_load(0) * 100.0
    );

    // Other links are unaffected: per-link ledgers.
    assert_eq!(cac.input_load(1), 0.0);
    println!("\ninput 1 remains empty: admission is per-link, as in the paper.");
}
