//! Arbiter face-off: every switch scheduler in the crate on the same
//! high-load CBR workload — the comparison the paper's §4 motivates,
//! extended to the related-work schemes it cites.
//!
//! ```sh
//! cargo run --release --example arbiter_faceoff
//! ```

use mmr_core::arbiter::scheduler::ArbiterKind;
use mmr_core::config::{RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::run_experiment;
use mmr_core::traffic::connection::TrafficClass;

fn main() {
    let load = 0.8;
    println!(
        "CBR mix at {:.0}% offered load, identical workload for every arbiter\n",
        load * 100.0
    );
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "arbiter", "util(%)", "low(µs)", "med(µs)", "high(µs)", "throughput"
    );
    for kind in ArbiterKind::all() {
        let cfg = SimConfig {
            workload: WorkloadSpec::cbr(load),
            arbiter: kind,
            warmup_cycles: 3_000,
            run: RunLength::Cycles(40_000),
            ..Default::default()
        };
        let r = run_experiment(&cfg);
        let d = |class| {
            r.summary
                .metrics
                .class(class)
                .map(|c| c.mean_delay_us)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:<8} {:>12.1} {:>12.2} {:>12.2} {:>12.2} {:>12.3}",
            kind.label(),
            r.summary.crossbar_utilization * 100.0,
            d(TrafficClass::CbrLow),
            d(TrafficClass::CbrMedium),
            d(TrafficClass::CbrHigh),
            r.summary.throughput_ratio()
        );
    }
    println!(
        "\nPriority-aware schedulers (COA, Greedy) keep *every* class's delay\n\
         bounded; priority-blind ones (WFA, iSLIP, PIM, Random) let whichever\n\
         class the SIABP bias is currently protecting starve at high load —\n\
         the paper's core claim."
    );
}
