//! Quickstart: simulate the paper's 4×4 Multimedia Router under a CBR mix
//! and print the QoS each class receives.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mmr_core::arbiter::scheduler::ArbiterKind;
use mmr_core::config::{RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::run_experiment;

fn main() {
    // A 4x4 MMR (1.24 Gbps links, 1024-bit flits, 4 candidate levels,
    // SIABP priorities, Candidate-Order Arbiter) at 70% offered load.
    let cfg = SimConfig {
        workload: WorkloadSpec::cbr(0.7),
        arbiter: ArbiterKind::Coa,
        warmup_cycles: 5_000,
        run: RunLength::Cycles(60_000),
        ..Default::default()
    };

    println!("building workload and router…");
    let result = run_experiment(&cfg);

    println!(
        "\n{} | priority: {} | achieved load {:.1}% | {} connections",
        result.summary.arbiter,
        result.summary.priority_fn,
        result.achieved_load * 100.0,
        result.connections
    );
    println!(
        "crossbar utilization {:.1}%, {} flits delivered over {} measured cycles\n",
        result.summary.crossbar_utilization * 100.0,
        result.summary.delivered_flits,
        result.summary.measured_cycles
    );
    println!(
        "{:<10} {:>10} {:>10} {:>14} {:>14}",
        "class", "generated", "delivered", "mean delay(µs)", "p99 delay(µs)"
    );
    for c in &result.summary.metrics.classes {
        println!(
            "{:<10} {:>10} {:>10} {:>14.2} {:>14.2}",
            c.class.label(),
            c.generated,
            c.delivered,
            c.mean_delay_us,
            c.p99_delay_us
        );
    }
    println!(
        "\nthroughput ratio {:.3} (1.0 = the router kept up with generation)",
        result.summary.throughput_ratio()
    );
}
