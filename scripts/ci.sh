#!/usr/bin/env bash
# Tier-1 gate: everything a revision must pass before merge.
# Offline-friendly: no network access, no external tools beyond the
# pinned Rust toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "== bench_report smoke + telemetry-overhead gate =="
# Write the next auto-numbered results/BENCH_<n>.json so every CI run
# extends the benchmark trajectory, and gate the instrumented-but-
# disabled router step against the newest committed baseline: telemetry
# must stay free when disarmed (threshold MMR_TELEMETRY_GATE_PCT, 2%).
BASELINE="$(ls results/BENCH_*.json | sort -V | tail -1)"
cargo run --release -q -p mmr-bench --bin bench_report -- --quick --gate "$BASELINE"

echo "== trace_report smoke =="
cargo run --release -q -p mmr-bench --bin trace_report
test -s results/telemetry_fig5_cbr.json
test -s results/trace_fig5_cbr.jsonl
test -s results/telemetry_chaos.json
test -s results/trace_chaos.jsonl

echo "== chaos smoke =="
cargo test --release -q -p mmr-core --test chaos
cargo run --release -q -p mmr-bench --bin chaos_report
test -s results/chaos_report.txt
test -s results/chaos_report.json

echo "== CI green =="
