#!/usr/bin/env bash
# Tier-1 gate: everything a revision must pass before merge.
# Offline-friendly: no network access, no external tools beyond the
# pinned Rust toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "== bench_report smoke + perf gates =="
# Write the next auto-numbered results/BENCH_<n>.json so every CI run
# extends the benchmark trajectory, and gate against the newest
# committed baseline: (1) the instrumented-but-disabled router step —
# telemetry must stay free when disarmed (MMR_TELEMETRY_GATE_PCT, 10%);
# (2) the whole-experiment sweep wall clock — the horizon engine must
# hold >= 3x over the legacy loop at 0.2 load, stay within 2% of
# cycle-by-cycle at 0.9, and not regress more than MMR_SWEEP_GATE_PCT
# (25%) per-cycle against the baseline's sweep section.
BASELINE="$(ls results/BENCH_*.json | sort -V | tail -1)"
cargo run --release -q -p mmr-bench --bin bench_report -- --quick --gate "$BASELINE"

echo "== fabric scaling gate =="
# Measure the 16-router 4x4 mesh fabric at worker counts 1/2/8 (results
# asserted bit-identical across counts), merge the fabric section into
# the BENCH_<n>.json bench_report just wrote — so the trajectory files
# keep carrying fabric numbers — and gate against the committed
# baseline: on hosts with >= 8 CPUs the 8-worker run must reach
# MMR_FABRIC_GATE_SPEEDUP (2.5x) the 1-worker throughput; on smaller
# hosts that is physically unmeasurable and the clause degrades to the
# MMR_FABRIC_GATE_OVERSUB oversubscription floor.  The 1-worker
# throughput must also stay within MMR_FABRIC_GATE_PCT (35%) of the
# baseline's fabric section, drift-normalized by a single-router
# reference run.
NEWEST="$(ls results/BENCH_*.json | sort -V | tail -1)"
cargo run --release -q -p mmr-bench --bin fabric_report -- --merge "$NEWEST" --gate "$BASELINE"

echo "== trace_report smoke =="
cargo run --release -q -p mmr-bench --bin trace_report
test -s results/telemetry_fig5_cbr.json
test -s results/trace_fig5_cbr.jsonl
test -s results/telemetry_chaos.json
test -s results/trace_chaos.jsonl

echo "== observatory artifacts =="
# Run the Fig. 5 mix with the QoS observatory armed and emit both
# observability artifacts.  metrics_dump self-validates each one —
# the Prometheus exposition re-parses (declared families, monotone
# cumulative buckets, +Inf/_count agreement) and the dashboard's
# inline JSON + panels check out — and exits non-zero on any failure;
# the trajectory panel reads the same BENCH_<n>.json files the perf
# gate above maintains.
cargo run --release -q -p mmr-bench --bin metrics_dump
test -s results/metrics.prom
test -s results/overview.html

echo "== chaos smoke =="
cargo test --release -q -p mmr-core --test chaos
cargo run --release -q -p mmr-bench --bin chaos_report
test -s results/chaos_report.txt
test -s results/chaos_report.json

echo "== conformance gate =="
# Evaluate the committed paper-claim manifest (crates/core/src/
# conformance.rs) over the quick-fidelity multi-seed ensemble; the
# binary exits non-zero on any claim regression, naming the claim and
# its margin.  `--list-claims` prints the manifest without simulating.
cargo run --release -q -p mmr-bench --bin conformance_report -- --list-claims
cargo run --release -q -p mmr-bench --bin conformance_report
test -s results/conformance.json
test -s results/conformance.txt

echo "== frontier ablation gate =="
# Sweep the Fig. 5 CBR workload over the full arbiter frontier (COA,
# WFA, iSLIP, MWM exact + greedy 1/2-approx, frame-fair, crosspoint-
# queued) and enforce the Frontier claims: exits non-zero if COA's
# delay ratio against the exact MWM oracle regresses past tolerance
# (override with MMR_FRONTIER_COA_MWM_MAX) or any other frontier claim
# fails at the ensemble median.
cargo run --release -q -p mmr-bench --bin ablation_frontier -- --gate
test -s results/frontier.json
test -s results/frontier.txt

echo "== workload pack gate =="
# Compile every declarative scenario pack under workloads/ (the
# workload language, crates/core/src/workload_lang.rs), sweep it at
# quick fidelity, and enforce its typed claims at the ensemble median.
# `--list-packs` validates the documents without simulating (a
# malformed pack fails CI right there); `--gate` exits non-zero on any
# claim regression, naming the claim and its margin.
cargo run --release -q -p mmr-bench --bin workload_runner -- --list-packs
cargo run --release -q -p mmr-bench --bin workload_runner -- --gate
test -s results/workload_paper_fig5.json
test -s results/workload_wimax_classes.json
test -s results/workload_noc_fair.json
test -s results/workload_paper_fig5.html

if [[ "${MMR_CI_NIGHTLY:-0}" == "1" ]]; then
    echo "== nightly: property suites at 4x cases =="
    # MMR_PROPTEST_CASES multiplies every proptest!-suite's configured
    # case count (see tests/README.md); generation is deterministic per
    # test name, so this replays the 1x prefix and extends it.
    MMR_PROPTEST_CASES=4 cargo test --release -q -p mmr-core \
        --test arbiter_properties --test qos_properties \
        --test flow_control --test differential --test workload_lang
fi

echo "== CI green =="
