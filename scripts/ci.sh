#!/usr/bin/env bash
# Tier-1 gate: everything a revision must pass before merge.
# Offline-friendly: no network access, no external tools beyond the
# pinned Rust toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "== bench_report smoke =="
SMOKE_OUT="$(mktemp /tmp/bench_smoke_XXXXXX.json)"
trap 'rm -f "$SMOKE_OUT"' EXIT
cargo run --release -q -p mmr-bench --bin bench_report -- --quick --out "$SMOKE_OUT"
test -s "$SMOKE_OUT"

echo "== chaos smoke =="
cargo test --release -q -p mmr-core --test chaos
cargo run --release -q -p mmr-bench --bin chaos_report
test -s results/chaos_report.txt
test -s results/chaos_report.json

echo "== CI green =="
