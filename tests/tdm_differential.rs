//! Differential tests for the TDM link scheduler, mirroring
//! `tests/differential.rs`: the optimized `TdmLinkScheduler` (partial
//! selection via `select_nth_unstable_by`, reused scratch) versus a
//! naive, obviously-correct reference transcription of the same
//! contract.  Both sides see identical VC memories, QoS tables, and
//! eligibility masks over many cycles, and must offer **identical
//! candidate lists, grant-for-grant**, at every level — including the
//! table cursor phase, which a single skipped cycle would shift for the
//! rest of the run.

use mmr_core::arbiter::candidate::{Candidate, CandidateSet, Priority};
use mmr_core::arbiter::priority::{LinkPriority, Siabp};
use mmr_core::router::link_scheduler::VcQosInfo;
use mmr_core::router::tdm::{build_slot_table, TdmLinkScheduler};
use mmr_core::router::vcmem::VcMemory;
use mmr_core::sim::rng::SimRng;
use mmr_core::sim::time::RouterCycle;
use mmr_core::traffic::connection::ConnectionId;
use mmr_core::traffic::flit::Flit;

/// Naive reference: one table entry per slot, full sorts, no scratch
/// reuse, no partial selection.  Deliberately written from the module
/// doc's contract, not from the optimized code.
struct ReferenceTdm {
    input: usize,
    table: Vec<Option<usize>>,
    cursor: usize,
    backfill: bool,
    vcs: Vec<usize>,
}

impl ReferenceTdm {
    fn new(
        input: usize,
        reservations: &[(usize, u64)],
        cycles_per_round: u64,
        table_len: usize,
        backfill: bool,
    ) -> Self {
        ReferenceTdm {
            input,
            table: reference_slot_table(reservations, cycles_per_round, table_len),
            cursor: 0,
            backfill,
            vcs: reservations.iter().map(|&(vc, _)| vc).collect(),
        }
    }

    fn advance_cursor(&mut self, n: u64) {
        for _ in 0..(n % self.table.len() as u64) {
            self.cursor = (self.cursor + 1) % self.table.len();
        }
    }

    /// The candidates this cycle's slot offers, highest level first.
    fn select_where<F: Fn(usize) -> bool>(
        &mut self,
        mem: &VcMemory,
        qos: &[VcQosInfo],
        priority_fn: &dyn LinkPriority,
        now: RouterCycle,
        levels: usize,
        eligible: F,
    ) -> Vec<Candidate> {
        let owner = self.table[self.cursor];
        self.cursor = (self.cursor + 1) % self.table.len();
        let mut out = Vec::new();
        let mut owner_offered = None;
        if let Some(vc) = owner {
            if eligible(vc) && mem.head(vc).is_some() {
                out.push(Candidate {
                    input: self.input,
                    vc,
                    output: qos[vc].output,
                    priority: Priority::new(f64::MAX / 4.0),
                });
                owner_offered = Some(vc);
            }
        }
        if !self.backfill {
            return out;
        }
        let mut backlog: Vec<(Priority, usize)> = Vec::new();
        for &vc in &self.vcs {
            if Some(vc) == owner_offered || !eligible(vc) {
                continue;
            }
            if let Some(head) = mem.head(vc) {
                let waited = now.saturating_sub(head.entered_at).0;
                let p = priority_fn.priority(qos[vc].reserved_slots, qos[vc].iat_rc, waited);
                backlog.push((p, vc));
            }
        }
        // Full sort by (priority desc, vc asc); take what fits.
        backlog.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        for &(p, vc) in backlog.iter().take(levels - out.len()) {
            out.push(Candidate {
                input: self.input,
                vc,
                output: qos[vc].output,
                priority: p,
            });
        }
        out
    }
}

/// Naive transcription of the table builder's contract: largest
/// reservations first (ties by VC index), round(slots/round × len)
/// entries each (at least one), even striding, linear probe, stop when
/// full.
fn reference_slot_table(
    reservations: &[(usize, u64)],
    cycles_per_round: u64,
    table_len: usize,
) -> Vec<Option<usize>> {
    let mut table: Vec<Option<usize>> = vec![None; table_len];
    let mut sorted = reservations.to_vec();
    sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (vc, slots) in sorted {
        if slots == 0 {
            continue;
        }
        let entries = ((slots as f64 / cycles_per_round as f64) * table_len as f64)
            .round()
            .max(1.0) as usize;
        let stride = table_len as f64 / entries as f64;
        'entry: for j in 0..entries {
            let mut pos = (j as f64 * stride) as usize % table_len;
            for _ in 0..table_len {
                if table[pos].is_none() {
                    table[pos] = Some(vc);
                    continue 'entry;
                }
                pos = (pos + 1) % table_len;
            }
            return table; // full
        }
    }
    table
}

/// A deterministic random QoS layout for `vcs` virtual channels over
/// `ports` outputs: mixed reservation sizes, including zero-reservation
/// (best-effort) VCs when `with_besteffort`.
fn random_layout(
    vcs: usize,
    ports: usize,
    rng: &mut SimRng,
    with_besteffort: bool,
) -> (Vec<(usize, u64)>, Vec<VcQosInfo>) {
    let mut reservations = Vec::with_capacity(vcs);
    let mut qos = Vec::with_capacity(vcs);
    for vc in 0..vcs {
        let slots = if with_besteffort && rng.index(4) == 0 {
            0
        } else {
            [1u64, 21, 181, 727][rng.index(4)]
        };
        reservations.push((vc, slots));
        qos.push(VcQosInfo {
            output: rng.index(ports),
            reserved_slots: slots,
            iat_rc: if slots == 0 {
                f64::INFINITY
            } else {
                16_384.0 / slots as f64
            },
        });
    }
    (reservations, qos)
}

/// Extract the offered candidates for `input`, level order.
fn offered(cs: &CandidateSet, input: usize, levels: usize) -> Vec<Candidate> {
    (0..levels).filter_map(|l| cs.get(input, l)).collect()
}

/// Drive both implementations over `cycles` cycles of churning VC
/// occupancy (pushes and pops from a shared workload stream) and assert
/// candidate-for-candidate identity, with an eligibility mask applied on
/// masked cycles.
fn assert_matches_reference(vcs: usize, backfill: bool, seeds: u64, cycles: usize) {
    let ports = vcs; // square switch: one possible output per VC index
    let levels = 4;
    let table_len = 64;
    for seed in 0..seeds {
        let mut rng = SimRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9) ^ 0x7D3);
        let (reservations, qos) = random_layout(vcs, ports, &mut rng, backfill);
        let mut fast = TdmLinkScheduler::new(0, reservations.clone(), 16_384, table_len, backfill);
        let mut golden = ReferenceTdm::new(0, &reservations, 16_384, table_len, backfill);
        assert_eq!(
            fast.table(),
            &golden.table[..],
            "slot tables diverged: vcs={vcs} seed={seed}"
        );
        let mut mem = VcMemory::new(vcs, 8, 1);
        let mut cs = CandidateSet::new(ports, levels);
        for cycle in 0..cycles {
            // Churn occupancy: a few random pushes, a few random pops.
            for _ in 0..rng.index(4) {
                let vc = rng.index(vcs);
                if mem.free_space(vc) > 0 {
                    mem.push(
                        vc,
                        Flit::cbr(
                            ConnectionId(vc as u32),
                            cycle as u64,
                            RouterCycle(cycle as u64),
                        ),
                        RouterCycle(cycle as u64),
                    );
                }
            }
            for _ in 0..rng.index(3) {
                mem.pop(rng.index(vcs));
            }
            // Every third cycle applies a random eligibility mask (the
            // stalled-output path).
            let mask: u64 = if cycle % 3 == 0 {
                rng.next_u64_raw() | 1 // never mask everything out
            } else {
                u64::MAX
            };
            let eligible = |vc: usize| mask & (1 << (vc % 64)) != 0;
            let now = RouterCycle(cycle as u64);
            cs.clear();
            let n = fast.select_where(&mem, &qos, &Siabp, now, &mut cs, eligible);
            let fast_offer = offered(&cs, 0, levels);
            let gold_offer = golden.select_where(&mem, &qos, &Siabp, now, levels, eligible);
            assert_eq!(
                fast_offer, gold_offer,
                "TDM(backfill={backfill}) diverged: vcs={vcs} seed={seed} cycle={cycle}"
            );
            assert_eq!(n, gold_offer.len(), "offered count disagrees");
        }
    }
}

#[test]
fn pure_tdm_matches_reference_at_4_8_16() {
    assert_matches_reference(4, false, 24, 200);
    assert_matches_reference(8, false, 16, 200);
    assert_matches_reference(16, false, 8, 150);
}

#[test]
fn backfill_tdm_matches_reference_at_4_8_16() {
    assert_matches_reference(4, true, 24, 200);
    assert_matches_reference(8, true, 16, 200);
    assert_matches_reference(16, true, 8, 150);
}

#[test]
fn slot_tables_match_reference_construction() {
    // Table construction alone, over a matrix of reservation mixes
    // including over-subscription (probing spills) and zero entries.
    let cases: Vec<Vec<(usize, u64)>> = vec![
        vec![(0, 727), (1, 21), (2, 1)],
        vec![(0, 0), (1, 100)],
        vec![(0, 8_192)],
        vec![(0, 900), (1, 900), (2, 900)], // over-subscribed
        vec![(0, 727), (1, 727), (2, 727), (3, 727)],
        vec![],
    ];
    for reservations in &cases {
        for table_len in [16usize, 64, 256] {
            assert_eq!(
                build_slot_table(reservations, 16_384, table_len),
                reference_slot_table(reservations, 16_384, table_len),
                "tables diverged for {reservations:?} len {table_len}"
            );
        }
    }
}

#[test]
fn bulk_cursor_advance_matches_reference_phase() {
    // advance_cursor(n) must equal n idle selects on BOTH sides — the
    // event-horizon engine depends on the phase staying locked.
    let reservations = vec![(0usize, 500u64), (1, 300), (2, 100)];
    let mut fast = TdmLinkScheduler::new(0, reservations.clone(), 1_000, 7, true);
    let mut golden = ReferenceTdm::new(0, &reservations, 1_000, 7, true);
    let mem = VcMemory::new(3, 4, 1); // empty: selects offer nothing
    let qos: Vec<VcQosInfo> = (0..3)
        .map(|vc| VcQosInfo {
            output: vc,
            reserved_slots: 100,
            iat_rc: 1_000.0,
        })
        .collect();
    let levels = 4;
    let mut cs = CandidateSet::new(4, levels);
    for (i, n) in [1u64, 6, 7, 13, 700, 9_999].into_iter().enumerate() {
        fast.advance_cursor(n);
        golden.advance_cursor(n);
        // One live select on each side proves the phases agree: after the
        // same advances, both must name the same slot owner next.
        cs.clear();
        fast.select(&mem, &qos, &Siabp, RouterCycle(i as u64), &mut cs);
        let gold = golden.select_where(&mem, &qos, &Siabp, RouterCycle(i as u64), levels, |_| true);
        assert_eq!(offered(&cs, 0, levels), gold, "phase diverged after +{n}");
        assert_eq!(fast.table(), &golden.table[..]);
    }
}

#[test]
fn backfill_fills_every_level_when_backlog_exceeds_levels() {
    // 8 backlogged VCs, 4 levels: the partial-selection path (truncate +
    // sort) is exercised against the reference's full sort every cycle.
    let vcs = 8;
    let mut rng = SimRng::seed_from_u64(0xFEED);
    let (reservations, qos) = random_layout(vcs, vcs, &mut rng, false);
    let mut fast = TdmLinkScheduler::new(0, reservations.clone(), 16_384, 32, true);
    let mut golden = ReferenceTdm::new(0, &reservations, 16_384, 32, true);
    let mut mem = VcMemory::new(vcs, 4, 1);
    for vc in 0..vcs {
        mem.push(
            vc,
            Flit::cbr(ConnectionId(vc as u32), 0, RouterCycle(vc as u64)),
            RouterCycle(vc as u64),
        );
    }
    let levels = 4;
    let mut cs = CandidateSet::new(vcs, levels);
    for cycle in 0..64u64 {
        cs.clear();
        let n = fast.select(&mem, &qos, &Siabp, RouterCycle(cycle), &mut cs);
        assert_eq!(n, levels, "every level must fill under full backlog");
        let gold = golden.select_where(&mem, &qos, &Siabp, RouterCycle(cycle), levels, |_| true);
        assert_eq!(offered(&cs, 0, levels), gold, "cycle {cycle}");
    }
}
