//! Steady-state allocation audit.
//!
//! A counting global allocator wraps the system allocator; after a
//! warm-up phase that grows every scratch buffer to its steady-state
//! capacity, the arbitration kernels and the whole router step must
//! perform **zero** heap allocations.  This pins the perf contract of
//! `SwitchScheduler::schedule_into` and `MmrRouter::step`: reusable
//! `Matching`/`CandidateSet` buffers plus per-arbiter struct scratch,
//! nothing allocated per cycle.
//!
//! Everything runs inside one `#[test]` because the allocator (and its
//! counter) is global to the test binary: a second concurrently-running
//! test would pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use mmr_core::arbiter::candidate::{Candidate, CandidateSet, Priority};
use mmr_core::arbiter::matching::Matching;
use mmr_core::arbiter::priority::Siabp;
use mmr_core::arbiter::scheduler::ArbiterKind;
use mmr_core::router::config::RouterConfig;
use mmr_core::router::fault::FaultProfile;
use mmr_core::router::router::MmrRouter;
use mmr_core::router::telemetry::TelemetryConfig;
use mmr_core::sim::engine::CycleModel;
use mmr_core::sim::fault::{FaultEvent, FaultKind, FaultPlan};
use mmr_core::sim::log::EventLog;
use mmr_core::sim::rng::SimRng;
use mmr_core::sim::time::FlitCycle;
use mmr_core::traffic::admission::RoundConfig;
use mmr_core::traffic::workload::CbrMixBuilder;

struct CountingAlloc;

// Per-thread, const-initialized (so the TLS access itself never
// allocates): the harness's other threads must not pollute the count.
thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn count_if_armed() {
    // try_with: TLS may be mid-teardown when late allocations happen.
    let _ = ARMED.try_with(|armed| {
        if armed.get() {
            let _ = ALLOC_CALLS.try_with(|c| c.set(c.get() + 1));
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_armed();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_armed();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_if_armed();
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Count allocator calls made by `f` on the calling thread.
fn allocations_in<F: FnOnce()>(f: F) -> u64 {
    ALLOC_CALLS.with(|c| c.set(0));
    ARMED.with(|a| a.set(true));
    f();
    ARMED.with(|a| a.set(false));
    ALLOC_CALLS.with(|c| c.get())
}

fn random_fill(cs: &mut CandidateSet, rng: &mut SimRng) {
    let ports = cs.ports();
    let levels = cs.levels();
    cs.clear();
    for input in 0..ports {
        // Push in descending-priority order; ties are common on purpose.
        let count = rng.index(levels + 1);
        let mut prio = 8.0;
        for vc in 0..count {
            prio -= rng.uniform();
            cs.push(Candidate {
                input,
                vc,
                output: rng.index(ports),
                priority: Priority::new(prio),
            });
        }
    }
}

#[test]
fn kernels_and_router_step_allocate_nothing_in_steady_state() {
    // --- Arbitration kernels -------------------------------------------
    let ports = 16;
    let mut cs = CandidateSet::new(ports, 4);
    let mut workload_rng = SimRng::seed_from_u64(42);
    let mut out = Matching::new(ports);
    for kind in ArbiterKind::all() {
        let mut sched = kind.instantiate(ports);
        let mut rng = SimRng::seed_from_u64(7);
        // Warm up: let every scratch buffer reach steady-state capacity.
        for _ in 0..50 {
            random_fill(&mut cs, &mut workload_rng);
            sched.schedule_into(&cs, &mut rng, &mut out);
        }
        // Steady state: not a single allocator call allowed.
        let mut total_grants = 0usize;
        let allocs = allocations_in(|| {
            for _ in 0..200 {
                random_fill(&mut cs, &mut workload_rng);
                sched.schedule_into(&cs, &mut rng, &mut out);
                total_grants += out.size();
            }
        });
        assert!(
            total_grants > 0,
            "{}: workload produced no grants",
            kind.label()
        );
        assert_eq!(
            allocs,
            0,
            "{}: schedule_into allocated {allocs} times in steady state",
            kind.label()
        );
    }

    // --- Arbitration kernels, multi-word widths -------------------------
    // 128 ports = two port-set words, 256 = four.  The wide paths size
    // their scratch (port-set words, conflict buckets, sort keys) from
    // `ports`, so a buffer sized for one word that silently regrows in
    // the W=2/W=4 monomorphizations would only show up here.
    for ports in [128usize, 256] {
        let mut cs = CandidateSet::new(ports, 4);
        let mut out = Matching::new(ports);
        for kind in ArbiterKind::all() {
            let mut sched = kind.instantiate(ports);
            let mut rng = SimRng::seed_from_u64(7);
            for _ in 0..30 {
                random_fill(&mut cs, &mut workload_rng);
                sched.schedule_into(&cs, &mut rng, &mut out);
            }
            let mut total_grants = 0usize;
            let allocs = allocations_in(|| {
                for _ in 0..100 {
                    random_fill(&mut cs, &mut workload_rng);
                    sched.schedule_into(&cs, &mut rng, &mut out);
                    total_grants += out.size();
                }
            });
            assert!(
                total_grants > 0,
                "{} @ {ports} ports: workload produced no grants",
                kind.label()
            );
            assert_eq!(
                allocs,
                0,
                "{} @ {ports} ports: schedule_into allocated {allocs} times in steady state",
                kind.label()
            );
        }
    }

    // --- Full router step, multi-word widths -----------------------------
    // The whole router at 128 and 256 ports: candidate selection, the
    // wide COA kernel, crossbar bookkeeping and per-port queues all sized
    // for multi-word port sets, still zero allocations per step.
    for ports in [128usize, 256] {
        let cfg = RouterConfig {
            ports,
            ..RouterConfig::default()
        };
        let mut rng = SimRng::seed_from_u64(5);
        let workload = CbrMixBuilder::new(cfg.ports, cfg.time, RoundConfig::default())
            .target_load(0.4)
            .build(&mut rng);
        let mut router = MmrRouter::new(
            cfg,
            workload,
            ArbiterKind::Coa.instantiate(ports),
            Box::new(Siabp),
            5,
        );
        let mut t = 0u64;
        for _ in 0..3_000 {
            router.step(FlitCycle(t), false);
            t += 1;
        }
        let allocs = allocations_in(|| {
            for _ in 0..1_500 {
                router.step(FlitCycle(t), false);
                t += 1;
            }
        });
        assert_eq!(
            allocs, 0,
            "COA router @ {ports} ports: step allocated {allocs} times in steady state"
        );
    }

    // --- TDM link scheduler --------------------------------------------
    // Both variants: pure TDM (owner-only) and backfill (priority sort
    // into the scratch vector).  After a warm-up that grows the scratch
    // to its high-water mark, selects — including the eligibility-masked
    // path and cursor wraps — must be allocation-free.  The VC memory
    // churn inside the measured region exercises push/pop reuse too.
    for backfill in [false, true] {
        use mmr_core::router::link_scheduler::VcQosInfo;
        use mmr_core::router::tdm::TdmLinkScheduler;
        use mmr_core::router::vcmem::VcMemory;
        use mmr_core::sim::time::RouterCycle;
        use mmr_core::traffic::connection::ConnectionId;
        use mmr_core::traffic::flit::Flit;
        let vcs = 8;
        let reservations: Vec<(usize, u64)> = (0..vcs)
            .map(|vc| (vc, [727u64, 181, 21, 1][vc % 4]))
            .collect();
        let qos: Vec<VcQosInfo> = (0..vcs)
            .map(|vc| VcQosInfo {
                output: vc % 4,
                reserved_slots: reservations[vc].1,
                iat_rc: 16_384.0 / reservations[vc].1 as f64,
            })
            .collect();
        let mut tdm = TdmLinkScheduler::new(0, reservations, 16_384, 64, backfill);
        let mut mem = VcMemory::new(vcs, 8, 1);
        let mut tdm_cs = CandidateSet::new(vcs, 4);
        let mut rng = SimRng::seed_from_u64(11);
        let drive = |tdm: &mut TdmLinkScheduler,
                     mem: &mut VcMemory,
                     cs: &mut CandidateSet,
                     rng: &mut SimRng,
                     cycles: u64|
         -> usize {
            let mut offered = 0;
            for t in 0..cycles {
                for _ in 0..rng.index(3) {
                    let vc = rng.index(vcs);
                    if mem.free_space(vc) > 0 {
                        mem.push(
                            vc,
                            Flit::cbr(ConnectionId(vc as u32), t, RouterCycle(t)),
                            RouterCycle(t),
                        );
                    }
                }
                for _ in 0..rng.index(2) {
                    mem.pop(rng.index(vcs));
                }
                let mask = rng.next_u64_raw() | 1;
                cs.clear();
                offered += tdm.select_where(mem, &qos, &Siabp, RouterCycle(t), cs, |vc| {
                    mask & (1 << vc) != 0
                });
            }
            offered
        };
        drive(&mut tdm, &mut mem, &mut tdm_cs, &mut rng, 200);
        let mut offered = 0;
        let allocs = allocations_in(|| {
            offered = drive(&mut tdm, &mut mem, &mut tdm_cs, &mut rng, 500);
        });
        assert!(offered > 0, "TDM(backfill={backfill}) offered nothing");
        assert_eq!(
            allocs, 0,
            "TDM(backfill={backfill}) select allocated {allocs} times in steady state"
        );
    }

    // --- Full router step ----------------------------------------------
    // CBR traffic below saturation: after a warm-up every queue, VC
    // buffer and scratch vector has seen its steady-state high-water
    // mark.  (Near saturation the elastic NIC queues legitimately keep
    // growing, so that regime cannot be allocation-free.)  These routers
    // have no FaultPlan installed, so this also pins the contract that
    // compiling the fault machinery in costs nothing when disabled.
    for kind in [
        ArbiterKind::Coa,
        ArbiterKind::Wfa,
        ArbiterKind::Islip { iterations: 2 },
        ArbiterKind::MwmExact,
        ArbiterKind::FrameFair { frame: 64 },
        ArbiterKind::CrosspointQueued { cap: 16 },
    ] {
        let cfg = RouterConfig::default();
        let mut rng = SimRng::seed_from_u64(5);
        let workload = CbrMixBuilder::new(cfg.ports, cfg.time, RoundConfig::default())
            .target_load(0.4)
            .build(&mut rng);
        let arbiter_ports = cfg.ports;
        let mut router = MmrRouter::new(
            cfg,
            workload,
            kind.instantiate(arbiter_ports),
            Box::new(Siabp),
            5,
        );
        let mut t = 0u64;
        for _ in 0..5_000 {
            router.step(FlitCycle(t), false);
            t += 1;
        }
        let allocs = allocations_in(|| {
            for _ in 0..2_000 {
                router.step(FlitCycle(t), false);
                t += 1;
            }
        });
        assert_eq!(
            allocs,
            0,
            "{}: router step allocated {allocs} times in steady state",
            kind.label()
        );
    }

    // --- Router step with fault machinery armed ------------------------
    // A FaultPlan is installed (so every fault path — begin_cycle, the
    // credit watchdog, the pending-duplicate drain — runs each cycle) but
    // all its events land during warm-up: the measured steady state must
    // still make zero allocator calls.  All fault state is pre-sized per
    // port/connection at install time.
    {
        let cfg = RouterConfig::default();
        let mut rng = SimRng::seed_from_u64(5);
        let workload = CbrMixBuilder::new(cfg.ports, cfg.time, RoundConfig::default())
            .target_load(0.4)
            .build(&mut rng);
        let arbiter_ports = cfg.ports;
        let mut router = MmrRouter::new(
            cfg,
            workload,
            ArbiterKind::Coa.instantiate(arbiter_ports),
            Box::new(Siabp),
            5,
        );
        let conns = router.connections().len();
        let mut events = Vec::new();
        for c in 0..conns {
            events.push(FaultEvent {
                at: 1_000 + c as u64 * 7,
                kind: FaultKind::DropCredit { conn: c },
            });
            events.push(FaultEvent {
                at: 2_000 + c as u64 * 7,
                kind: FaultKind::DuplicateCredit { conn: c },
            });
        }
        for input in 0..arbiter_ports {
            events.push(FaultEvent {
                at: 3_000 + input as u64,
                kind: FaultKind::CorruptFlit { input },
            });
        }
        router.set_faults(FaultPlan::from_events(events), FaultProfile::default());
        let mut t = 0u64;
        for _ in 0..5_000 {
            router.step(FlitCycle(t), false);
            t += 1;
        }
        assert!(
            router.fault_report().events_fired > 0,
            "warm-up must consume the fault plan"
        );
        let allocs = allocations_in(|| {
            for _ in 0..2_000 {
                router.step(FlitCycle(t), false);
                t += 1;
            }
        });
        assert_eq!(
            allocs, 0,
            "armed fault machinery allocated {allocs} times in steady state"
        );
    }

    // --- Router step with telemetry armed -------------------------------
    // Arming telemetry allocates once (counter registry, profiler table,
    // flight-recorder ring, snapshot ring); after that, every hook in the
    // hot path — counter adds, stage profiling, trace recording, window
    // rolls — must be allocation-free.  The recorder ring wraps and the
    // snapshot window rolls several times inside the measured region, so
    // both reuse paths are exercised.
    {
        let cfg = RouterConfig::default();
        let mut rng = SimRng::seed_from_u64(5);
        let workload = CbrMixBuilder::new(cfg.ports, cfg.time, RoundConfig::default())
            .target_load(0.4)
            .build(&mut rng);
        let arbiter_ports = cfg.ports;
        let mut router = MmrRouter::new(
            cfg,
            workload,
            ArbiterKind::Coa.instantiate(arbiter_ports),
            Box::new(Siabp),
            5,
        );
        router.set_telemetry(TelemetryConfig {
            trace_capacity: 512,
            snapshot_interval: 250,
            ..TelemetryConfig::default()
        });
        let mut t = 0u64;
        for _ in 0..5_000 {
            router.step(FlitCycle(t), false);
            t += 1;
        }
        let allocs = allocations_in(|| {
            for _ in 0..2_000 {
                router.step(FlitCycle(t), false);
                t += 1;
            }
        });
        assert_eq!(
            allocs, 0,
            "armed telemetry allocated {allocs} times in steady state"
        );
        let recorder = router.telemetry().recorder();
        assert!(
            recorder.recorded() > recorder.capacity() as u64,
            "measured region must wrap the trace ring"
        );
        let report = router.telemetry_report();
        assert!(
            report.windows.len() >= 8,
            "measured region must roll snapshot windows"
        );

        // The observatory is on by default, so the allocation-free region
        // above already covered its per-delivery histogram and SLO hooks;
        // confirm it actually observed traffic rather than sitting idle.
        let obs = report
            .observatory
            .as_ref()
            .expect("default telemetry config arms the observatory");
        assert!(
            obs.classes.iter().map(|c| c.delay.count()).sum::<u64>() > 0,
            "observatory must have recorded deliveries in the measured region"
        );

        // Prometheus exposition into a warm buffer is allocation-free:
        // one sizing pass, then clear + rewrite must never touch the heap.
        let mut buf = String::new();
        router.prometheus_into(&mut buf);
        assert!(buf.contains("# TYPE mmr_delay_seconds histogram"));
        let expected = buf.clone();
        let allocs = allocations_in(|| {
            buf.clear();
            router.prometheus_into(&mut buf);
        });
        assert_eq!(
            allocs, 0,
            "exposition into a warm buffer allocated {allocs} times"
        );
        assert_eq!(buf, expected, "warm-buffer rewrite must be byte-identical");
    }

    // --- Horizon loop: skips allocate nothing ---------------------------
    // At a very low load the event-horizon loop alternates short active
    // bursts with multi-cycle fast-forwards.  The injection calendar is
    // built once at admission and updated in place, so `next_event` and
    // `skip_quiescent` are pure bookkeeping over preallocated state: the
    // measured region — dominated by skips, with telemetry armed so the
    // bulk window-roll path runs too — must make zero allocator calls.
    // (A calendar rebuilt per skip would show up here as a Vec
    // allocation on every fast-forward.)
    {
        fn advance(router: &mut MmrRouter, from: u64, cycles: u64, skipped: &mut u64) -> u64 {
            // The same loop shape as Runner::run_horizon, inlined so the
            // measured window can start mid-run.
            let mut t = from;
            let end = from + cycles;
            while t < end {
                router.step(FlitCycle(t), false);
                let target = router.next_event(FlitCycle(t)).0.max(t + 1).min(end);
                let gap = target - (t + 1);
                if gap > 0 {
                    router.skip_quiescent(FlitCycle(t + 1), gap, false);
                    *skipped += gap;
                }
                t = target;
            }
            t
        }
        let cfg = RouterConfig::default();
        let mut rng = SimRng::seed_from_u64(5);
        let workload = CbrMixBuilder::new(cfg.ports, cfg.time, RoundConfig::default())
            .target_load(0.05)
            .build(&mut rng);
        let arbiter_ports = cfg.ports;
        let mut router = MmrRouter::new(
            cfg,
            workload,
            ArbiterKind::Coa.instantiate(arbiter_ports),
            Box::new(Siabp),
            5,
        );
        router.set_telemetry(TelemetryConfig {
            trace_capacity: 512,
            snapshot_interval: 250,
            ..TelemetryConfig::default()
        });
        let mut skipped = 0u64;
        let t = advance(&mut router, 0, 5_000, &mut skipped);
        skipped = 0;
        let allocs = allocations_in(|| {
            advance(&mut router, t, 20_000, &mut skipped);
        });
        assert!(
            skipped > 5_000,
            "low-load region must be skip-dominated, skipped only {skipped} of 20000"
        );
        assert_eq!(
            allocs, 0,
            "horizon loop allocated {allocs} times across {skipped} skipped cycles"
        );
    }

    // --- Fabric: sharded mesh steady state ------------------------------
    // A 4×4 mesh of routers driven through the fabric's inline
    // (workers = 1) epoch path: mailbox double-buffering is pointer
    // swaps, pending wires drain into reused deques, per-node event
    // buffers and the commit cursor vector hold their high-water
    // capacity.  After a warm-up that routes multi-hop traffic through
    // every lane, stepping the whole 16-router fabric must make zero
    // allocator calls.  (Worker threads have their own stacks and are
    // not measurable with a thread-local counter, which is why the
    // steady-state contract is pinned on the inline path; the parallel
    // path runs the same per-node code on pre-split slices.)
    {
        use mmr_core::experiment::{build_fabric, build_fabric_workload};
        use mmr_core::scenarios::{fabric_mesh, Fidelity};
        let cfg = fabric_mesh(Fidelity::Quick);
        let spec = cfg.fabric.expect("fabric scenario carries a spec");
        let workload = build_fabric_workload(&cfg, &spec);
        let mut fabric = build_fabric(&cfg, &spec, workload);
        let mut t = 0u64;
        for _ in 0..8_000 {
            fabric.step(FlitCycle(t), false);
            t += 1;
        }
        let before = fabric.summary().delivered_flits;
        let allocs = allocations_in(|| {
            for _ in 0..1_500 {
                fabric.step(FlitCycle(t), false);
                t += 1;
            }
        });
        let delivered = fabric.summary().delivered_flits - before;
        assert!(
            delivered > 0,
            "fabric measured region must deliver traffic, delivered {delivered}"
        );
        assert_eq!(
            allocs, 0,
            "fabric step allocated {allocs} times in steady state"
        );
    }

    // --- Scenario-pack steady state (Mix + ramp + churn) -----------------
    // The workload language compiles onto MixWorkloadBuilder: staged
    // activations and churn wrap sources in ExpiringSource and offset
    // phases, but all of that is decided at build time.  With every ramp
    // breakpoint and the whole churn window inside warm-up, the measured
    // steady state — departed sources reading as exhausted, late arrivals
    // active, the usual queues at their high-water marks — must make zero
    // allocator calls per step.
    {
        use mmr_core::sim::units::Bandwidth;
        use mmr_core::traffic::connection::TrafficClass;
        use mmr_core::traffic::workload::MixWorkloadBuilder;
        let cfg = RouterConfig::default();
        let mut rng = SimRng::seed_from_u64(5);
        let workload = MixWorkloadBuilder::new(cfg.ports, cfg.time, RoundConfig::default())
            .target_load(0.4)
            .classes(vec![
                (TrafficClass::CbrLow, Bandwidth::kbps(64.0), 2.0),
                (TrafficClass::CbrMedium, Bandwidth::mbps(1.54), 2.0),
                (TrafficClass::CbrHigh, Bandwidth::mbps(6.0), 1.0),
            ])
            .ramp(vec![(0, 0.5), (1_000, 1.0)])
            .churn(500, 3_500, 0.25, 0.2)
            .build(&mut rng);
        assert!(
            workload.active_at(0) < workload.active_at(2_000),
            "ramp must stage activations inside warm-up"
        );
        let arbiter_ports = cfg.ports;
        let mut router = MmrRouter::new(
            cfg,
            workload,
            ArbiterKind::Coa.instantiate(arbiter_ports),
            Box::new(Siabp),
            5,
        );
        let mut t = 0u64;
        for _ in 0..6_000 {
            router.step(FlitCycle(t), false);
            t += 1;
        }
        let allocs = allocations_in(|| {
            for _ in 0..2_000 {
                router.step(FlitCycle(t), false);
                t += 1;
            }
        });
        assert_eq!(
            allocs, 0,
            "pack (Mix+ramp+churn) router step allocated {allocs} times in steady state"
        );
    }

    // --- EventLog recording ---------------------------------------------
    // The debug event log formats into a reusable byte arena: recording
    // (including wrap-around eviction of old entries) makes no allocator
    // calls once constructed.
    {
        let mut log = EventLog::new(64);
        for tick in 0..64 {
            log.record(tick, format_args!("warm {tick}"));
        }
        let allocs = allocations_in(|| {
            for tick in 0..1_000u64 {
                log.record(
                    tick,
                    format_args!("grant in={} out={}", tick % 16, tick % 7),
                );
            }
        });
        assert_eq!(
            allocs, 0,
            "EventLog::record allocated {allocs} times in steady state"
        );
        assert_eq!(log.len(), 64, "ring retains the newest entries");
    }
}
