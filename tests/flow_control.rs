//! Flow-control integration tests.
//!
//! The VC memory panics on overflow and the credit bank panics on
//! underflow/over-return, so *any* credit-protocol violation aborts these
//! tests.  Running saturating workloads through tiny buffers is therefore
//! itself the assertion.

use mmr_core::arbiter::scheduler::ArbiterKind;
use mmr_core::config::{InjectionKind, RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::{build_router, build_workload, run_experiment};
use mmr_core::router::config::RouterConfig;
use mmr_core::router::fault::FaultProfile;
use mmr_core::scenarios::vbr_cycle_budget;
use mmr_core::sim::engine::CycleModel;
use mmr_core::sim::fault::{FaultEvent, FaultKind, FaultPlan};
use mmr_core::sim::time::FlitCycle;
use proptest::prelude::*;

#[test]
fn single_flit_buffers_never_overflow_under_saturation() {
    // The harshest case: 1-flit VC buffers at 90% offered load.  Credits
    // are the only thing standing between the NIC and an overflow.
    let cfg = SimConfig {
        router: RouterConfig {
            vc_buffer_flits: 1,
            ..Default::default()
        },
        workload: WorkloadSpec::cbr(0.9),
        warmup_cycles: 0,
        run: RunLength::Cycles(20_000),
        ..Default::default()
    };
    let r = run_experiment(&cfg);
    assert!(r.summary.delivered_flits > 0);
    // With depth-1 buffers total VC occupancy is bounded by connections.
    assert!(r.summary.peak_vc_occupancy <= r.connections);
}

#[test]
fn every_arbiter_respects_credits_with_tiny_buffers() {
    for kind in ArbiterKind::all() {
        let cfg = SimConfig {
            router: RouterConfig {
                vc_buffer_flits: 2,
                ..Default::default()
            },
            workload: WorkloadSpec::cbr(0.85),
            arbiter: kind,
            warmup_cycles: 0,
            run: RunLength::Cycles(8_000),
            ..Default::default()
        };
        let r = run_experiment(&cfg);
        assert!(
            r.summary.peak_vc_occupancy <= r.connections * 2,
            "{}: peak occupancy exceeded credit budget",
            kind.label()
        );
    }
}

#[test]
fn vc_occupancy_bounded_by_credit_budget() {
    // Peak total occupancy can never exceed connections x buffer depth.
    for depth in [1usize, 3, 4, 8] {
        let cfg = SimConfig {
            router: RouterConfig {
                vc_buffer_flits: depth,
                ..Default::default()
            },
            workload: WorkloadSpec::cbr(0.8),
            warmup_cycles: 0,
            run: RunLength::Cycles(10_000),
            ..Default::default()
        };
        let r = run_experiment(&cfg);
        assert!(
            r.summary.peak_vc_occupancy <= r.connections * depth,
            "depth {depth}: {} > {}",
            r.summary.peak_vc_occupancy,
            r.connections * depth
        );
    }
}

#[test]
fn bursty_vbr_respects_flow_control() {
    // Back-to-back MPEG-2 bursts hammer the input links; credits must
    // absorb them without loss (conservation) or overflow (no panic).
    let cfg = SimConfig {
        router: RouterConfig {
            vc_buffer_flits: 2,
            ..Default::default()
        },
        workload: WorkloadSpec::Vbr {
            target_load: 0.85,
            gops: 1,
            injection: InjectionKind::BackToBack,
            enforce_peak: false,
        },
        warmup_cycles: 0,
        run: RunLength::UntilDrained {
            max_cycles: vbr_cycle_budget(1),
        },
        ..Default::default()
    };
    let r = run_experiment(&cfg);
    let total_gen: u64 = r.summary.metrics.classes.iter().map(|c| c.generated).sum();
    let total_del: u64 = r.summary.metrics.classes.iter().map(|c| c.delivered).sum();
    if r.drained {
        assert_eq!(total_gen, total_del, "drained run must conserve flits");
    } else {
        // Saturated within the budget: delivered + backlog = generated
        // over the whole run (conservation still holds globally).
        assert_eq!(
            r.summary.generated_flits,
            r.summary.delivered_flits + r.summary.backlog_flits as u64,
            "flits leaked somewhere in the pipeline"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary credit-loss/duplication patterns (DESIGN.md §10): the
    /// credit watchdog must resynchronize every counter, flits must be
    /// conserved, and the router must keep delivering — no pattern of
    /// credit damage may deadlock the pipeline.
    #[test]
    fn watchdog_recovers_from_arbitrary_credit_fault_patterns(
        pattern in proptest::collection::vec(
            (0u64..2_000, 0usize..64, 0usize..2),
            1..48,
        ),
        seed in 0u64..1_000,
    ) {
        let cfg = SimConfig {
            workload: WorkloadSpec::cbr(0.5),
            seed,
            ..Default::default()
        };
        let workload = build_workload(&cfg);
        let mut router = build_router(&cfg, workload);
        let conns = router.connections().len();
        let events: Vec<FaultEvent> = pattern
            .iter()
            .map(|&(at, conn, kind)| FaultEvent {
                at: 500 + at,
                kind: if kind == 0 {
                    FaultKind::DropCredit { conn: conn % conns }
                } else {
                    FaultKind::DuplicateCredit { conn: conn % conns }
                },
            })
            .collect();
        let n_events = events.len() as u64;
        router.set_faults(FaultPlan::from_events(events), FaultProfile::default());

        router.on_measurement_start(FlitCycle(0));
        for t in 0..2_500 {
            router.step(FlitCycle(t), true);
        }
        let mid: u64 = router.delivered_per_connection().iter().sum();
        prop_assert!(mid > 0, "no deliveries during the fault window");

        // Recovery: run to just past a watchdog cycle (period 64) so the
        // final resync has seen every credit movement, including returns
        // stolen late by still-pending DropCredit events.
        for t in 2_500..=3_968 {
            router.step(FlitCycle(t), true);
        }
        prop_assert!(
            router.credits_consistent(),
            "watchdog failed to resynchronize credit counters"
        );
        let end: u64 = router.delivered_per_connection().iter().sum();
        prop_assert!(end > mid, "router stopped delivering after credit faults");

        let s = router.summary();
        prop_assert_eq!(s.faults.events_fired, n_events);
        // Credit faults never corrupt links; the only losses allowed are
        // phantom-credit discards, and conservation must account for them.
        prop_assert_eq!(s.faults.corrupted_flits, 0u64);
        prop_assert_eq!(
            s.generated_flits,
            s.delivered_flits + s.backlog_flits as u64 + s.faults.lost_flits(),
            "flits leaked under credit faults"
        );
    }
}

#[test]
fn conservation_holds_at_every_load() {
    for load in [0.2, 0.5, 0.8, 0.95] {
        let cfg = SimConfig {
            workload: WorkloadSpec::cbr(load),
            warmup_cycles: 0,
            run: RunLength::Cycles(5_000),
            ..Default::default()
        };
        let r = run_experiment(&cfg);
        assert_eq!(
            r.summary.generated_flits,
            r.summary.delivered_flits + r.summary.backlog_flits as u64,
            "load {load}: generated != delivered + backlog"
        );
    }
}
