//! The workload language is a *description* of an experiment, not a new
//! engine: compiling `workloads/paper_fig5.toml` must reproduce the
//! canned `scenarios::fig5` path bit for bit — same `SweepSpec`, same
//! `ExperimentResult` JSON bytes, same arbitration-RNG stream positions,
//! in both engine modes.  The property tests then pin the language
//! itself: specs round-trip losslessly through the TOML emitter, and
//! malformed documents always surface as typed [`SpecError`]s, never
//! panics.

use mmr_core::config::{EngineMode, SimConfig};
use mmr_core::experiment::{build_router, build_workload, run_experiment};
use mmr_core::scenarios::{fig5, Fidelity};
use mmr_core::sim::engine::{Runner, StopCondition};
use mmr_core::workload_lang::{SpecError, WorkloadSpec};
use proptest::prelude::*;
use std::path::Path;

fn pack_path(name: &str) -> String {
    format!("{}/../../workloads/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn load_pack(name: &str) -> WorkloadSpec {
    let text = std::fs::read_to_string(pack_path(name)).expect("pack file readable");
    let spec = WorkloadSpec::parse(&text).expect("pack parses");
    spec.validate().expect("pack validates");
    spec
}

// ---------------------------------------------------------------------------
// Satellite 1: fig5 differential — declarative path vs canned path
// ---------------------------------------------------------------------------

#[test]
fn fig5_pack_compiles_to_the_canned_sweep() {
    let spec = load_pack("paper_fig5.toml");
    for fidelity in [Fidelity::Quick, Fidelity::Full] {
        let pack = spec.compile(fidelity).expect("pack compiles");
        assert_eq!(
            pack.sweep,
            fig5(fidelity),
            "compiled {fidelity:?} sweep diverged from scenarios::fig5"
        );
    }
}

#[test]
fn fig5_pack_results_are_byte_identical_event_horizon() {
    let pack = load_pack("paper_fig5.toml")
        .compile(Fidelity::Quick)
        .expect("pack compiles");
    let canned = fig5(Fidelity::Quick);
    for (ours, theirs) in pack.sweep.configs().iter().zip(canned.configs().iter()) {
        let a = serde_json::to_string(&run_experiment(ours)).expect("serializes");
        let b = serde_json::to_string(&run_experiment(theirs)).expect("serializes");
        assert_eq!(
            a,
            b,
            "results diverged at load {} arbiter {}",
            ours.workload.target_load(),
            ours.arbiter.label()
        );
    }
}

#[test]
fn fig5_pack_results_are_byte_identical_cycle_by_cycle() {
    // The slower engine on a subset of the grid: one load, both arbiters.
    let pack = load_pack("paper_fig5.toml")
        .compile(Fidelity::Quick)
        .expect("pack compiles");
    let canned = fig5(Fidelity::Quick);
    for (ours, theirs) in pack.sweep.configs().iter().zip(canned.configs().iter()) {
        if (ours.workload.target_load() - 0.7).abs() > 1e-9 {
            continue;
        }
        let ours = ours.clone().with_engine(EngineMode::CycleByCycle);
        let theirs = theirs.clone().with_engine(EngineMode::CycleByCycle);
        let a = serde_json::to_string(&run_experiment(&ours)).expect("serializes");
        let b = serde_json::to_string(&run_experiment(&theirs)).expect("serializes");
        assert_eq!(
            a,
            b,
            "cycle-by-cycle diverged under {}",
            ours.arbiter.label()
        );
    }
}

#[test]
fn fig5_pack_rng_fingerprints_match_the_canned_path() {
    // Stronger than output equality: after identical runs the arbitration
    // RNG must sit at the same stream position, per engine mode.
    let pack = load_pack("paper_fig5.toml")
        .compile(Fidelity::Quick)
        .expect("pack compiles");
    let canned = fig5(Fidelity::Quick);
    let fingerprint = |cfg: &SimConfig, horizon: bool| {
        let workload = build_workload(cfg);
        let mut router = build_router(cfg, workload);
        let runner = Runner::new(cfg.warmup_cycles, StopCondition::Cycles(6_000));
        if horizon {
            runner.run_horizon(&mut router);
        } else {
            runner.run(&mut router);
        }
        router.rng_fingerprint()
    };
    for (ours, theirs) in pack.sweep.configs().iter().zip(canned.configs().iter()) {
        if (ours.workload.target_load() - 0.5).abs() > 1e-9 {
            continue;
        }
        for horizon in [false, true] {
            assert_eq!(
                fingerprint(ours, horizon),
                fingerprint(theirs, horizon),
                "RNG stream diverged (horizon={horizon}, arbiter {})",
                ours.arbiter.label()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// The committed pack set stays wellformed
// ---------------------------------------------------------------------------

#[test]
fn all_committed_packs_parse_validate_and_compile() {
    let dir = pack_path("");
    let mut names: Vec<_> = std::fs::read_dir(Path::new(&dir))
        .expect("workloads/ exists")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".toml"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 3,
        "expected the three committed packs, found {names:?}"
    );
    for name in names {
        let spec = load_pack(&name);
        for fidelity in [Fidelity::Quick, Fidelity::Full] {
            let pack = spec.compile(fidelity).expect("pack compiles");
            assert!(!pack.sweep.loads.is_empty());
            assert!(!pack.sweep.seeds.is_empty());
        }
        // Round-trip the committed document through the emitter too.
        let back = WorkloadSpec::parse(&spec.to_toml()).expect("emitted TOML parses");
        assert_eq!(back, spec, "{name} does not round-trip");
    }
}

#[test]
fn scenario_packs_carry_enough_claims() {
    for (name, min_claims) in [
        ("paper_fig5.toml", 3),
        ("wimax_classes.toml", 3),
        ("noc_fair.toml", 3),
    ] {
        let spec = load_pack(name);
        let claims = spec.claim.as_ref().map(|c| c.len()).unwrap_or(0);
        assert!(claims >= min_claims, "{name} has only {claims} claims");
    }
}

// ---------------------------------------------------------------------------
// Satellite 2: property tests — lossless round-trip, typed rejection
// ---------------------------------------------------------------------------

/// A valid spec assembled from fuzzed primitives.
fn build_spec(
    warmup: u64,
    cycles: u64,
    rates: (f64, f64),
    weights: (f64, f64),
    seeds: u64,
    ramp_gap: u64,
    with_churn: bool,
) -> WorkloadSpec {
    use mmr_core::workload_lang::*;
    let text = format!(
        r#"
[meta]
name = "fuzzed"
description = "property-test pack"

[[traffic.group]]
name = "a"
class = "cbr-low"
rate_kbps = {ra}
weight = {wa}

[[traffic.group]]
name = "b"
class = "cbr-high"
rate_kbps = {rb}
weight = {wb}

[run]
warmup = {warmup}
cycles = {cycles}

[sweep]
loads = [0.25, 0.5]
arbiters = ["coa"]
seeds = {seeds}

[[ramp.step]]
at_cycle = 0
fraction = 0.5

[[ramp.step]]
at_cycle = {ramp_at}
fraction = 1.0
"#,
        ra = rates.0,
        wa = weights.0,
        rb = rates.1,
        wb = weights.1,
        ramp_at = 1 + ramp_gap,
    );
    let mut spec = WorkloadSpec::parse(&text).expect("assembled spec parses");
    if with_churn {
        spec.churn = Some(ChurnSec {
            start: warmup / 2,
            end: warmup / 2 + 1 + ramp_gap,
            departures: 0.25,
            arrivals: 0.25,
        });
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spec_roundtrips_losslessly_through_toml(
        lengths in (0u64..5_000, 1_000u64..50_000),
        rates in (1.0f64..50_000.0, 1.0f64..50_000.0),
        weights in (0.125f64..8.0, 0.125f64..8.0),
        knobs in (1u64..6, 1u64..4_000, 0u64..2),
    ) {
        let (warmup, cycles) = lengths;
        let (seeds, ramp_gap, churn) = knobs;
        let spec = build_spec(warmup, cycles, rates, weights, seeds, ramp_gap, churn == 1);
        prop_assert!(spec.validate().is_ok(), "assembled spec must validate");
        let text = spec.to_toml();
        let back = WorkloadSpec::parse(&text);
        prop_assert!(back.is_ok(), "emitted TOML failed to parse:\n{}", text);
        prop_assert_eq!(back.unwrap(), spec);
    }

    #[test]
    fn malformed_specs_yield_typed_errors_not_panics(
        bad_rate in -50_000.0f64..0.0,
        at_cycle in 0u64..1_000,
        overload in 0.3f64..0.9,
    ) {
        let base = build_spec(1_000, 10_000, (64.0, 128.0), (1.0, 1.0), 1, 100, false);

        // Negative / zero rates are typed rejections.
        let mut spec = base.clone();
        spec.traffic.group.as_mut().unwrap()[0].rate_kbps = bad_rate;
        prop_assert_eq!(
            spec.validate(),
            Err(SpecError::NegativeRate { group: "a".into() })
        );

        // Overlapping ramp windows: two steps at the same cycle.
        let mut spec = base.clone();
        {
            let steps = &mut spec.ramp.as_mut().unwrap().step;
            steps[0].at_cycle = at_cycle;
            steps[1].at_cycle = at_cycle;
        }
        prop_assert!(matches!(
            spec.validate(),
            Err(SpecError::OverlappingRampWindows { .. })
        ));

        // Class totals over slot capacity: peak load plus churn arrivals
        // plus best-effort background past 1.0.
        let mut spec = base.clone();
        spec.sweep.loads = Some(vec![overload]);
        spec.best_effort = Some(mmr_core::workload_lang::BestEffortSec {
            load: 0.95 - overload + 0.2,
            mean_flits: 8.0,
        });
        prop_assert!(matches!(
            spec.validate(),
            Err(SpecError::CapacityExceeded { .. })
        ));

        // Inverted churn window.
        let mut spec = base;
        spec.churn = Some(mmr_core::workload_lang::ChurnSec {
            start: at_cycle + 1,
            end: at_cycle,
            departures: 0.1,
            arrivals: 0.0,
        });
        prop_assert!(matches!(
            spec.validate(),
            Err(SpecError::ChurnWindowInverted { .. })
        ));
    }

    #[test]
    fn parser_never_panics_on_scrambled_documents(
        picks in proptest::collection::vec(0usize..16, 0..12),
    ) {
        // Assemble documents from a pool of pathological lines; any
        // outcome is fine as long as it is a Result, not a panic.
        const POOL: [&str; 16] = [
            "[meta]",
            "name = \"x\"",
            "description = \"y\"",
            "[traffic]",
            "preset = \"paper-cbr\"",
            "[[traffic.group]]",
            "rate_kbps = -1.0e308",
            "loads = [0.5, ",
            "0.7]",
            "= 3",
            "[[claim]",
            "x = \"unterminated",
            "y = [ [ [ 1 ] ] ]",
            "z = 0xZZ",
            "seeds = 99999999999999999999999999",
            "[a.b.c.d.e]",
        ];
        let doc: Vec<&str> = picks.iter().map(|&i| POOL[i]).collect();
        let doc = doc.join("\n");
        let _ = WorkloadSpec::parse(&doc).and_then(|s| s.validate());
    }
}
