//! QoS property tests — the paper's qualitative claims, asserted.

use mmr_core::arbiter::scheduler::ArbiterKind;
use mmr_core::config::{InjectionKind, RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::run_experiment;
use mmr_core::scenarios::vbr_cycle_budget;
use mmr_core::traffic::connection::TrafficClass;

/// Worst per-class mean delay — the QoS number a scheduler must bound.
fn worst_class_delay(cfg: &SimConfig) -> f64 {
    let r = run_experiment(cfg);
    r.summary
        .metrics
        .classes
        .iter()
        .filter(|c| c.delivered > 0)
        .map(|c| c.mean_delay_us)
        .fold(0.0, f64::max)
}

#[test]
fn coa_bounds_worst_class_delay_better_than_wfa_at_high_load() {
    // The paper's core claim (§5.1): near saturation, the priority-aware
    // COA keeps QoS where the priority-blind WFA lets a class starve.
    let base = SimConfig {
        workload: WorkloadSpec::cbr(0.82),
        warmup_cycles: 4_000,
        run: RunLength::Cycles(60_000),
        ..Default::default()
    };
    let coa = worst_class_delay(&base);
    let wfa = worst_class_delay(&base.with_arbiter(ArbiterKind::Wfa));
    assert!(
        coa < wfa,
        "COA worst-class delay {coa:.1} µs must beat WFA {wfa:.1} µs at 82% load"
    );
    assert!(
        wfa / coa > 2.0,
        "the gap should be large (COA {coa:.1} vs WFA {wfa:.1})"
    );
}

#[test]
fn both_arbiters_equivalent_at_low_load() {
    // §5.1: "both switching schemes offer similar performance" away from
    // saturation.
    let base = SimConfig {
        workload: WorkloadSpec::cbr(0.4),
        warmup_cycles: 2_000,
        run: RunLength::Cycles(30_000),
        ..Default::default()
    };
    let coa = worst_class_delay(&base);
    let wfa = worst_class_delay(&base.with_arbiter(ArbiterKind::Wfa));
    let ratio = coa.max(wfa) / coa.min(wfa);
    assert!(
        ratio < 2.0,
        "low-load delays should be comparable: COA {coa:.2} WFA {wfa:.2}"
    );
}

#[test]
fn siabp_keeps_every_cbr_class_bounded_below_saturation() {
    let cfg = SimConfig {
        workload: WorkloadSpec::cbr(0.7),
        warmup_cycles: 4_000,
        run: RunLength::Cycles(50_000),
        ..Default::default()
    };
    let r = run_experiment(&cfg);
    for c in &r.summary.metrics.classes {
        if c.delivered == 0 {
            continue;
        }
        assert!(
            c.mean_delay_us < 100.0,
            "{:?} mean delay {:.1} µs at 70% load",
            c.class,
            c.mean_delay_us
        );
    }
}

#[test]
fn vbr_jitter_stays_in_microsecond_range_below_saturation() {
    // §5.2: mean jitter ~8-10 µs, far under the milliseconds MPEG-2
    // playback tolerates.
    for injection in [InjectionKind::SmoothRate, InjectionKind::BackToBack] {
        let cfg = SimConfig {
            workload: WorkloadSpec::Vbr {
                target_load: 0.6,
                gops: 2,
                injection,
                enforce_peak: false,
            },
            warmup_cycles: 0,
            run: RunLength::UntilDrained {
                max_cycles: vbr_cycle_budget(2),
            },
            ..Default::default()
        };
        let r = run_experiment(&cfg);
        assert!(r.drained);
        let jitter = r.summary.metrics.mean_frame_jitter_us;
        assert!(
            jitter < 1_000.0,
            "{} mean jitter {jitter:.1} µs should be well under a millisecond",
            injection.label()
        );
    }
}

#[test]
fn bb_injection_has_higher_frame_delay_than_sr() {
    // §5.2 / Fig. 9: "average frame delays before saturation are higher"
    // with BB than SR.
    let run = |injection| {
        let cfg = SimConfig {
            workload: WorkloadSpec::Vbr {
                target_load: 0.6,
                gops: 2,
                injection,
                enforce_peak: false,
            },
            warmup_cycles: 0,
            run: RunLength::UntilDrained {
                max_cycles: vbr_cycle_budget(2),
            },
            ..Default::default()
        };
        run_experiment(&cfg).summary.metrics.mean_frame_delay_us
    };
    let sr = run(InjectionKind::SmoothRate);
    let bb = run(InjectionKind::BackToBack);
    assert!(
        bb > sr,
        "BB frame delay {bb:.1} µs must exceed SR {sr:.1} µs below saturation"
    );
}

#[test]
fn high_bandwidth_class_gets_priority_under_contention() {
    // SIABP biases toward bandwidth-hungry connections: at moderately
    // high load the 55 Mbps class must see delays no worse than the
    // 64 Kbps class (whose flits can afford to wait, per §3.1).
    let cfg = SimConfig {
        workload: WorkloadSpec::cbr(0.75),
        warmup_cycles: 4_000,
        run: RunLength::Cycles(60_000),
        ..Default::default()
    };
    let r = run_experiment(&cfg);
    let high = r
        .summary
        .metrics
        .class(TrafficClass::CbrHigh)
        .unwrap()
        .mean_delay_us;
    let low = r
        .summary
        .metrics
        .class(TrafficClass::CbrLow)
        .unwrap()
        .mean_delay_us;
    assert!(
        high <= low * 1.5,
        "high class {high:.1} µs should not trail low class {low:.1} µs"
    );
}

#[test]
fn coa_protects_high_bandwidth_throughput_past_saturation() {
    // Past saturation something must starve.  SIABP + COA starves the
    // low-reservation connections ("priority grows faster for
    // high-bandwidth consuming connections", §3.1) and keeps serving the
    // high class; WFA's per-VC fairness underserves the high class, whose
    // demand dominates the load.
    let base = SimConfig {
        workload: WorkloadSpec::cbr(0.92),
        warmup_cycles: 2_000,
        run: RunLength::Cycles(40_000),
        ..Default::default()
    };
    let ratio = |cfg: &SimConfig| {
        let c = run_experiment(cfg);
        let high = c.summary.metrics.class(TrafficClass::CbrHigh).unwrap();
        high.delivered as f64 / high.generated as f64
    };
    let coa = ratio(&base);
    let wfa = ratio(&base.with_arbiter(ArbiterKind::Wfa));
    assert!(
        coa >= wfa - 0.01,
        "COA high-class delivery ratio {coa:.3} must not trail WFA {wfa:.3}"
    );
    // Characterize the fairness metric itself: past saturation both
    // schedulers fall well short of reservation-proportional service.
    let coa_fair = run_experiment(&base).summary.reservation_fairness;
    assert!(
        coa_fair < 0.95,
        "past saturation fairness should degrade, got {coa_fair}"
    );
}

#[test]
fn fairness_is_high_below_saturation() {
    let cfg = SimConfig {
        workload: WorkloadSpec::cbr(0.5),
        warmup_cycles: 5_000,
        run: RunLength::Cycles(60_000),
        ..Default::default()
    };
    let f = run_experiment(&cfg).summary.reservation_fairness;
    // Everyone is fully served; the only unfairness left is the slot
    // rounding of tiny connections.
    assert!(f > 0.8, "below saturation fairness {f}");
}

#[test]
fn aged_low_priority_flits_are_never_starved_below_saturation() {
    // SIABP's delay doubling guarantees any flit eventually outranks
    // fresh high-reservation flits, so below saturation even the 64 Kbps
    // class must deliver everything it generates (COA serves by priority,
    // so this is the aging mechanism working end to end).
    let cfg = SimConfig {
        workload: WorkloadSpec::cbr(0.8),
        warmup_cycles: 0,
        run: RunLength::Cycles(120_000),
        ..Default::default()
    };
    let r = run_experiment(&cfg);
    let low = r.summary.metrics.class(TrafficClass::CbrLow).unwrap();
    assert!(
        low.generated > 50,
        "need a meaningful sample, got {}",
        low.generated
    );
    let ratio = low.delivered as f64 / low.generated as f64;
    assert!(
        ratio > 0.95,
        "low class delivered only {ratio:.2} of its flits at 80% load"
    );
    // And its worst-case delay stays bounded (aging caps the wait).
    assert!(
        low.max_delay_us < 5_000.0,
        "low-class max delay {:.0} µs",
        low.max_delay_us
    );
}

#[test]
fn wfa_utilization_does_not_beat_coa_at_saturation() {
    // Fig. 8's shape: COA sustains at least as much crossbar utilization
    // as WFA once the router is pushed past WFA's saturation point.
    let base = SimConfig {
        workload: WorkloadSpec::Vbr {
            target_load: 0.88,
            gops: 1,
            injection: InjectionKind::SmoothRate,
            enforce_peak: false,
        },
        warmup_cycles: 0,
        run: RunLength::UntilDrained {
            max_cycles: vbr_cycle_budget(1),
        },
        ..Default::default()
    };
    let coa = run_experiment(&base);
    let wfa = run_experiment(&base.with_arbiter(ArbiterKind::Wfa));
    assert!(
        coa.summary.crossbar_utilization >= wfa.summary.crossbar_utilization - 0.02,
        "COA util {:.3} vs WFA {:.3}",
        coa.summary.crossbar_utilization,
        wfa.summary.crossbar_utilization
    );
}
