//! Best-effort extension: unreserved traffic must scavenge residual
//! bandwidth without breaking the reserved classes' QoS.

use mmr_core::config::{BestEffortSpec, RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::{build_workload, run_experiment};
use mmr_core::traffic::connection::TrafficClass;

fn with_be(reserved: f64, be: f64) -> SimConfig {
    SimConfig {
        workload: WorkloadSpec::cbr(reserved),
        best_effort: Some(BestEffortSpec {
            per_link_load: be,
            mean_flits: 8.0,
        }),
        warmup_cycles: 2_000,
        run: RunLength::Cycles(25_000),
        ..Default::default()
    }
}

#[test]
fn best_effort_connections_have_no_reservation() {
    let w = build_workload(&with_be(0.5, 0.2));
    let be: Vec<_> = w.by_class(TrafficClass::BestEffort).collect();
    assert!(!be.is_empty());
    // One per (input, output) pair on a 4x4 router.
    assert_eq!(be.len(), 16);
    assert!(be.iter().all(|c| c.reserved_slots == 0));
    // Ids stay dense after appending.
    for (i, c) in w.connections.iter().enumerate() {
        assert_eq!(c.id.idx(), i);
    }
}

#[test]
fn best_effort_gets_through_when_headroom_exists() {
    let r = run_experiment(&with_be(0.3, 0.2));
    let be = r.summary.metrics.class(TrafficClass::BestEffort).unwrap();
    assert!(be.generated > 0);
    let ratio = be.delivered as f64 / be.generated as f64;
    assert!(ratio > 0.95, "BE delivery ratio {ratio} with 70% headroom");
}

#[test]
fn reserved_qos_survives_best_effort_intrusion() {
    let without = run_experiment(&SimConfig {
        best_effort: None,
        ..with_be(0.6, 0.0)
    });
    let with = run_experiment(&with_be(0.6, 0.3));
    for class in [TrafficClass::CbrMedium, TrafficClass::CbrHigh] {
        let base = without.summary.metrics.class(class).unwrap().mean_delay_us;
        let loaded = with.summary.metrics.class(class).unwrap().mean_delay_us;
        assert!(
            loaded < base * 3.0 + 5.0,
            "{class:?}: delay {loaded:.1} µs vs baseline {base:.1} µs — BE broke QoS"
        );
    }
}

#[test]
fn best_effort_yields_under_pressure() {
    // At 85% reserved + 30% BE the link is oversubscribed; the unreserved
    // class must be the one that suffers (SIABP keeps its priority at the
    // floor).
    let r = run_experiment(&with_be(0.85, 0.3));
    let be = r.summary.metrics.class(TrafficClass::BestEffort).unwrap();
    let high = r.summary.metrics.class(TrafficClass::CbrHigh).unwrap();
    assert!(
        be.mean_delay_us > high.mean_delay_us,
        "BE delay {:.1} µs should exceed reserved high-class delay {:.1} µs",
        be.mean_delay_us,
        high.mean_delay_us
    );
}

#[test]
fn zero_best_effort_load_is_a_noop() {
    let mut w = build_workload(&SimConfig {
        best_effort: None,
        ..with_be(0.5, 0.0)
    });
    let before = w.len();
    let tb = mmr_core::sim::time::TimeBase::default();
    let mut rng = mmr_core::sim::rng::SimRng::seed_from_u64(1);
    w.append_best_effort(4, 0.0, 8.0, &tb, &mut rng);
    assert_eq!(w.len(), before);
}
