//! End-to-end telemetry: the armed router's counters, stage profile,
//! kernel probes, snapshot windows, and flight recorder, exercised
//! through the public experiment API.
//!
//! Unit coverage for each telemetry component lives beside it
//! (`mmr_sim::telemetry`, `mmr_router::telemetry`); this suite pins the
//! cross-crate behaviour: what an armed Fig. 5-style run actually
//! reports, that the trace survives a round-trip through JSONL, and that
//! a panic mid-simulation leaves the trace on disk.

use mmr_core::config::{RunLength, SimConfig, TelemetrySpec, WorkloadSpec};
use mmr_core::experiment::{build_router, build_workload, run_experiment};
use mmr_core::router::telemetry::TelemetryConfig;
use mmr_core::scenarios::{chaos, Fidelity};
use mmr_core::sim::engine::CycleModel;
use mmr_core::sim::telemetry::recorder::{run_with_dump_on_panic, FlightRecorder, TraceEvent};
use mmr_core::sim::time::FlitCycle;

fn fig5_style(load: f64) -> SimConfig {
    SimConfig {
        workload: WorkloadSpec::cbr(load),
        warmup_cycles: 500,
        run: RunLength::Cycles(8_000),
        ..Default::default()
    }
}

#[test]
fn armed_cbr_run_reports_counters_stages_and_windows() {
    let cfg = fig5_style(0.7).with_telemetry(TelemetrySpec {
        snapshot_interval: 1_000,
        ..TelemetrySpec::default()
    });
    let result = run_experiment(&cfg);
    let report = result.telemetry.expect("armed run returns a report");

    // Counters: the run executed 8000 cycles and moved traffic.
    let counter = |name: &str| {
        report
            .counters
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("missing counter {name}"))
            .value
    };
    assert_eq!(counter("cycles"), 8_000);
    assert!(counter("grants_issued") > 0);
    assert!(counter("credits_returned") > 0);
    assert_eq!(counter("faults_detected"), 0, "clean run detects nothing");

    // Stage profile: every pipeline stage ran every cycle; with the
    // deterministic null clock wall time stays zero.
    assert_eq!(report.stages.len(), 7);
    for stage in &report.stages {
        assert_eq!(stage.calls, 8_000, "stage {} call count", stage.name);
        assert_eq!(stage.wall_ns, 0, "null clock must report zero wall time");
    }
    let arb = report
        .stages
        .iter()
        .find(|s| s.name == "arbitration")
        .unwrap();
    assert!(arb.work > 0, "arbitration stage records grants as work");

    // Kernel probe: one matching per cycle that offers candidates,
    // consistent with the grants counter.  Candidate-free cycles never
    // reach the kernel — the engine treats them as quiescent and either
    // gates or skips arbitration entirely — and at load 0.7 the only
    // such cycle is cycle 0, before the first flit has arrived.
    assert_eq!(report.kernel.matchings, 7_999);
    assert_eq!(report.kernel.grants, counter("grants_issued"));
    assert!(report.kernel.candidates_examined >= report.kernel.grants);

    // Windows: 8000 cycles / 1000-cycle interval = 8 complete windows,
    // contiguous and per-class consistent.
    assert_eq!(report.windows.len(), 8);
    assert_eq!(report.windows_dropped, 0);
    for (i, w) in report.windows.iter().enumerate() {
        assert_eq!(w.index, i as u64);
        assert_eq!(w.start_cycle, i as u64 * 1_000);
        assert_eq!(w.end_cycle, i as u64 * 1_000 + 999);
        assert!(w.grants > 0, "every window sees grants at load 0.7");
        for class in &w.classes {
            if class.delivered > 0 {
                assert!(class.mean_delay_rc > 0.0);
            }
        }
    }
    let delivered: u64 = report
        .windows
        .iter()
        .flat_map(|w| w.classes.iter())
        .map(|c| c.delivered)
        .sum();
    assert!(delivered > 0, "windows account delivered flits");
}

#[test]
fn armed_run_carries_a_consistent_observatory() {
    let cfg = fig5_style(0.7).with_telemetry(TelemetrySpec {
        snapshot_interval: 1_000,
        ..TelemetrySpec::default()
    });
    let result = run_experiment(&cfg);
    let report = result.telemetry.as_ref().expect("armed run reports");
    let obs = report
        .observatory
        .as_ref()
        .expect("the observatory is armed by default");
    assert_eq!(report.windows_dropped, 0);

    // Every delivery lands in exactly one class delay histogram, with a
    // matching queue-residency sample; the window accounting sees the
    // same flits.
    let observed: u64 = obs.classes.iter().map(|c| c.delay.count()).sum();
    assert!(observed > 0, "load 0.7 delivers flits");
    let windowed: u64 = report
        .windows
        .iter()
        .flat_map(|w| w.classes.iter())
        .map(|c| c.delivered)
        .sum();
    assert_eq!(observed, windowed, "observatory and windows disagree");
    for c in &obs.classes {
        assert_eq!(
            c.delay.count(),
            c.residency.count(),
            "{:?}: every delivered flit has a residency sample",
            c.class
        );
    }

    // Per-connection observations partition the class totals, and jitter
    // chains record one sample per delivery after a connection's first.
    let per_conn: u64 = obs.connections.iter().map(|c| c.delivered).sum();
    assert_eq!(per_conn, observed);
    let jitter: u64 = obs.classes.iter().map(|c| c.jitter.count()).sum();
    assert_eq!(jitter, observed - obs.connections.len() as u64);

    // SLO accounting: windowed violation counts reconcile with the
    // totals, and the window observer saw every closed window.
    let win_violations: u64 = report
        .windows
        .iter()
        .flat_map(|w| w.classes.iter())
        .map(|c| c.slo_violations)
        .sum();
    assert_eq!(win_violations, obs.slo.violations_total);
    assert_eq!(obs.slo.windows_observed, report.windows.len() as u64);
    let by_class: u64 = obs.classes.iter().map(|c| c.slo_violations).sum();
    assert_eq!(by_class, obs.slo.violations_total);

    // The CAC tally rode along from workload construction.
    assert!(result.admission.accepted > 0);
    assert_eq!(result.admission.accepted, result.connections as u64);
}

#[test]
fn experiment_exposition_is_valid_and_covers_the_observatory() {
    let cfg = fig5_style(0.6).with_telemetry(TelemetrySpec::default());
    let result = run_experiment(&cfg);
    let prom = result.prometheus();
    let stats = mmr_core::sim::telemetry::validate_exposition(&prom)
        .expect("experiment exposition validates");
    assert!(stats.families >= 15, "only {} families", stats.families);
    for family in [
        "mmr_cycles",
        "mmr_stage_calls_total",
        "mmr_kernel_matchings",
        "mmr_delay_seconds",
        "mmr_jitter_seconds",
        "mmr_residency_seconds",
        "mmr_slo_violations_total",
        "mmr_admission_accepted_total",
        "mmr_admission_rejected_total",
    ] {
        assert!(
            prom.contains(&format!("# TYPE {family} ")),
            "exposition is missing family {family}"
        );
    }
    // A disarmed result exposes nothing.
    let plain = run_experiment(&fig5_style(0.6));
    assert_eq!(plain.prometheus(), "", "disarmed exposition must be empty");
}

#[test]
fn observatory_opt_out_removes_the_report_section() {
    let cfg = fig5_style(0.6).with_telemetry(TelemetrySpec {
        observatory: false,
        ..TelemetrySpec::default()
    });
    let result = run_experiment(&cfg);
    let report = result.telemetry.as_ref().unwrap();
    assert!(report.observatory.is_none());
    assert!(
        report
            .windows
            .iter()
            .all(|w| w.classes.iter().all(|c| c.slo_violations == 0)),
        "no SLO accounting without the observatory"
    );
    let prom = result.prometheus();
    mmr_core::sim::telemetry::validate_exposition(&prom).expect("still valid");
    assert!(!prom.contains("mmr_delay_seconds"));
}

#[test]
fn chaos_run_traces_fault_detections() {
    // The hottest quick chaos point, truncated to the fault window so
    // detections land in the retained ring tail.
    let mut cfg = chaos(Fidelity::Quick)
        .configs()
        .pop()
        .expect("chaos spec has factors");
    let plan = cfg.fault.expect("chaos config carries faults").plan;
    cfg.run = RunLength::Cycles(plan.window_start + plan.window_len);
    cfg.telemetry = Some(TelemetrySpec::default());
    let result = run_experiment(&cfg);
    let report = result.telemetry.expect("armed run returns a report");
    let faults = report
        .counters
        .iter()
        .find(|c| c.name == "faults_detected")
        .unwrap()
        .value;
    assert!(faults > 0, "chaos run must detect faults");
}

#[test]
fn trace_ring_wraps_and_round_trips_through_jsonl() {
    // A small ring on a real router run: the recorder must wrap many
    // times, keep the newest events in cycle order, and reproduce them
    // exactly after a JSONL dump/parse round-trip.
    let cfg = fig5_style(0.7);
    let mut router = build_router(&cfg, build_workload(&cfg));
    router.set_telemetry(TelemetryConfig {
        trace_capacity: 256,
        ..TelemetryConfig::default()
    });
    for t in 0..4_000 {
        router.step(FlitCycle(t), true);
    }
    let recorder = router.telemetry().recorder();
    assert_eq!(recorder.len(), 256, "ring is full");
    assert!(
        recorder.recorded() > 10 * 256,
        "run wraps the ring many times over"
    );
    let events: Vec<TraceEvent> = recorder.events().collect();
    assert!(
        events.windows(2).all(|w| w[0].cycle <= w[1].cycle),
        "retained events are oldest-first"
    );

    let dump = recorder.dump_jsonl();
    assert_eq!(dump.lines().count(), 256);
    let parsed = FlightRecorder::parse_jsonl(&dump).expect("dump parses back");
    assert_eq!(parsed, events, "JSONL round-trip is lossless");
}

#[test]
fn panic_mid_simulation_dumps_the_trace() {
    let dir = std::env::temp_dir().join("mmr_telemetry_test");
    std::fs::create_dir_all(&dir).unwrap();
    let dump_path = dir.join(format!("panic_dump_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&dump_path);

    let mut recorder = FlightRecorder::new(64);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_with_dump_on_panic(&mut recorder, &dump_path, |rec| {
            for cycle in 0..100u64 {
                rec.record(TraceEvent::grant(cycle, 3, 5, 1));
                assert!(cycle < 80, "simulated assertion failure at cycle 80");
            }
        })
    }));
    assert!(outcome.is_err(), "the guarded run must panic");

    let dump = std::fs::read_to_string(&dump_path).expect("panic left a dump on disk");
    let events = FlightRecorder::parse_jsonl(&dump).expect("dump parses");
    assert_eq!(events.len(), 64, "ring capacity retained");
    assert_eq!(
        events.last().unwrap().cycle,
        80,
        "newest event is the failure cycle"
    );
    std::fs::remove_file(&dump_path).ok();
}

#[test]
fn disarmed_router_reports_nothing() {
    let cfg = fig5_style(0.5);
    let mut router = build_router(&cfg, build_workload(&cfg));
    for t in 0..1_000 {
        router.step(FlitCycle(t), true);
    }
    assert!(!router.telemetry().is_enabled());
    let report = router.telemetry_report();
    assert!(report.counters.iter().all(|c| c.value == 0));
    assert!(report.stages.iter().all(|s| s.calls == 0));
    assert_eq!(report.windows.len(), 0);
    assert_eq!(report.trace_events_recorded, 0);
}
