//! Tier-1 paper-conformance suite (ISSUE 5 tentpole).
//!
//! Builds the quick-fidelity multi-seed ensemble ONCE (shared across
//! every test here via `OnceLock`) and pins the committed claim manifest
//! against it: Fig. 5 CBR delay, Fig. 7 injection models, Fig. 8 VBR
//! utilization, Fig. 9 VBR frame delay, Table 1 MPEG-2 statistics.  The
//! simulator is deterministic, so these are exact regression gates, not
//! statistical flakes — a failure means a code change moved a figure.
//!
//! Also includes the negative control: an artificially inverted claim
//! (WFA outlasting COA) must FAIL against the same ensemble, proving the
//! checks can actually reject.

use mmr_core::arbiter::scheduler::ArbiterKind;
use mmr_core::conformance::{
    evaluate_all, paper_claims, report_from, Check, Claim, CurveMetric, Ensemble, EnsembleOptions,
    Figure, Panel,
};
use mmr_core::saturation::ExperimentCache;
use mmr_core::scenarios::Fidelity;
use mmr_core::sweep::SweepSpec;
use mmr_core::traffic::connection::TrafficClass;
use std::sync::{Mutex, OnceLock};

/// The shared quick-fidelity ensemble plus the cache that built it.
fn ensemble() -> &'static (Ensemble, Mutex<ExperimentCache>) {
    static CELL: OnceLock<(Ensemble, Mutex<ExperimentCache>)> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut cache = ExperimentCache::new();
        let e = Ensemble::build(EnsembleOptions::new(Fidelity::Quick), &mut cache);
        (e, Mutex::new(cache))
    })
}

#[test]
fn manifest_spans_every_figure_with_at_least_ten_claims() {
    let claims = paper_claims();
    assert!(
        claims.len() >= 10,
        "manifest must encode >= 10 claims, has {}",
        claims.len()
    );
    for figure in [
        Figure::Fig5,
        Figure::Fig7,
        Figure::Fig8,
        Figure::Fig9,
        Figure::Table1,
        Figure::Frontier,
    ] {
        assert!(
            claims.iter().any(|c| c.figure == figure),
            "no claim guards {}",
            figure.label()
        );
    }
    assert!(
        claims
            .iter()
            .filter(|c| c.figure == Figure::Frontier)
            .count()
            >= 4,
        "the frontier ablation must carry >= 4 claims"
    );
    // The headline Fig. 5 acceptance claims, by construction.
    let gap = claims
        .iter()
        .find(|c| c.id == "fig5.saturation-gap")
        .expect("gap claim exists");
    match gap.check {
        Check::SaturationGap {
            winner,
            loser,
            min_points,
            ..
        } => {
            assert_eq!(winner, ArbiterKind::Coa);
            assert_eq!(loser, ArbiterKind::Wfa);
            assert!(min_points >= 8.0, "gap threshold is {min_points}");
        }
        other => panic!("fig5.saturation-gap has wrong check: {other:?}"),
    }
    let delay = claims
        .iter()
        .find(|c| c.id == "fig5.coa-high-delay-86")
        .expect("delay claim exists");
    match delay.check {
        Check::DelayBelow {
            arbiter,
            at_load,
            max_value,
            ..
        } => {
            assert_eq!(arbiter, ArbiterKind::Coa);
            assert!((at_load - 0.86).abs() < 1e-9);
            assert!(max_value <= 10.0, "delay bound is {max_value} us");
        }
        other => panic!("fig5.coa-high-delay-86 has wrong check: {other:?}"),
    }
}

#[test]
fn every_committed_claim_passes_at_the_ensemble_median() {
    let (e, _) = ensemble();
    assert!(
        e.cbr_seeds.len() >= 5,
        "Fig. 5 claims must hold across >= 5 seeds, got {}",
        e.cbr_seeds.len()
    );
    let outcomes = evaluate_all(&paper_claims(), e);
    let failures: Vec<String> = outcomes
        .iter()
        .filter(|o| !o.pass)
        .map(|o| {
            format!(
                "{} [{}]: median {:.4} vs threshold {:.4} (margin {:+.4} {})",
                o.id, o.figure, o.median, o.threshold, o.margin, o.unit
            )
        })
        .collect();
    assert!(
        failures.is_empty(),
        "paper claims regressed:\n{}",
        failures.join("\n")
    );
    for o in &outcomes {
        assert!(
            o.spread_min <= o.median && o.median <= o.spread_max,
            "{}: median {} outside spread [{}, {}]",
            o.id,
            o.median,
            o.spread_min,
            o.spread_max
        );
        assert!(!o.per_seed.is_empty(), "{}: no per-seed values", o.id);
    }
}

#[test]
fn fig5_headline_numbers_hold_with_margin_reported() {
    let (e, _) = ensemble();
    let outcomes = evaluate_all(&paper_claims(), e);
    let gap = outcomes
        .iter()
        .find(|o| o.id == "fig5.saturation-gap")
        .unwrap();
    assert!(
        gap.pass && gap.median >= 8.0,
        "COA-over-WFA saturation gap: median {:.2} load points (spread {:.2}..{:.2})",
        gap.median,
        gap.spread_min,
        gap.spread_max
    );
    assert_eq!(gap.per_seed.len(), e.cbr_seeds.len());
    let delay = outcomes
        .iter()
        .find(|o| o.id == "fig5.coa-high-delay-86")
        .unwrap();
    assert!(
        delay.pass && delay.median <= 10.0,
        "COA 55 Mbps delay at 86% load: median {:.2} us",
        delay.median
    );
}

#[test]
fn inverted_claims_fail_against_the_same_ensemble() {
    // Negative control for the CI gate: flipping who the paper says wins
    // must flip the verdict.  If these "pass", the checks are vacuous.
    let (e, _) = ensemble();
    let high = CurveMetric::ClassDelayUs(TrafficClass::CbrHigh);
    let inverted_gap = Claim {
        id: "negative.wfa-outlasts-coa",
        figure: Figure::Fig5,
        description: "artificially inverted: WFA saturates >= 8 points after COA",
        check: Check::SaturationGap {
            panel: Panel::Fig5Cbr,
            metric: high,
            winner: ArbiterKind::Wfa,
            loser: ArbiterKind::Coa,
            min_points: 8.0,
        },
    };
    let o = inverted_gap.evaluate(e);
    assert!(
        !o.pass,
        "inverted saturation-gap claim passed (median {:.2}) — the check cannot reject",
        o.median
    );
    assert!(o.margin < 0.0, "inverted claim must report negative margin");

    let inverted_delay = Claim {
        id: "negative.wfa-meets-coa-bound",
        figure: Figure::Fig5,
        description: "artificially inverted: WFA holds COA's 10 us bound at 86%",
        check: Check::DelayBelow {
            panel: Panel::Fig5Cbr,
            metric: high,
            arbiter: ArbiterKind::Wfa,
            at_load: 0.86,
            max_value: 10.0,
        },
    };
    let o = inverted_delay.evaluate(e);
    assert!(
        !o.pass,
        "WFA met COA's delay bound at 86% load (median {:.2} us) — no collapse detected",
        o.median
    );
}

#[test]
fn report_is_serializable_and_failures_gate() {
    let (e, _) = ensemble();
    let report = report_from(e, Fidelity::Quick);
    assert_eq!(report.fidelity, "quick");
    assert!(report.all_pass(), "committed manifest must pass");
    assert!(report.failed().is_empty());
    let text = report.render_text();
    for claim in paper_claims() {
        assert!(text.contains(claim.id), "render omits {}", claim.id);
    }
    let json = serde_json::to_string(&report).expect("serializes");
    let back: mmr_core::conformance::ConformanceReport =
        serde_json::from_str(&json).expect("roundtrips");
    assert_eq!(back, report);
}

#[test]
fn warm_cache_rebuild_simulates_nothing() {
    // The ensemble runner goes through ExperimentCache::run_many; a
    // second build with the warmed cache must be pure lookup — this is
    // what lets conformance piggyback on sweeps CI already ran.
    let (e, cache) = ensemble();
    let mut cache = cache.lock().unwrap();
    let misses_before = cache.misses();
    let rebuilt = Ensemble::build(EnsembleOptions::new(Fidelity::Quick), &mut cache);
    assert_eq!(
        cache.misses(),
        misses_before,
        "warm rebuild re-simulated points"
    );
    assert_eq!(rebuilt.fig5.len(), e.fig5.len());
    let before = evaluate_all(&paper_claims(), e);
    let after = evaluate_all(&paper_claims(), &rebuilt);
    assert_eq!(before, after, "cached replay changed claim outcomes");
}

#[test]
fn ensemble_grids_match_the_claim_anchors() {
    // Every grid point a claim reads must exist in the specs the
    // ensemble actually runs (point_at panics at evaluation time too,
    // but this pins the contract explicitly and cheaply).
    let f5: SweepSpec = mmr_core::conformance::fig5_conformance_spec(Fidelity::Quick);
    assert!(f5.loads.contains(&0.86));
    assert_eq!(f5.arbiters.len(), 2, "Fig. 5 compares COA vs WFA");
    for kind in [ArbiterKind::Coa, ArbiterKind::Wfa] {
        assert!(f5.arbiters.contains(&kind));
    }
    let f9 = mmr_core::conformance::fig9_conformance_spec(
        mmr_core::config::InjectionKind::SmoothRate,
        Fidelity::Quick,
    );
    for load in [0.4, 0.6, 0.85] {
        assert!(f9.loads.contains(&load), "Fig. 9 grid misses {load}");
    }
    let fr = mmr_core::conformance::frontier_conformance_spec(Fidelity::Quick);
    for load in [0.5, 0.7, 0.86] {
        assert!(fr.loads.contains(&load), "frontier grid misses {load}");
    }
    assert_eq!(fr.arbiters.len(), 7, "the frontier compares 7 arbiters");
    for kind in [
        ArbiterKind::Coa,
        ArbiterKind::Wfa,
        ArbiterKind::MwmExact,
        ArbiterKind::MwmApprox,
    ] {
        assert!(fr.arbiters.contains(&kind), "frontier grid misses a kind");
    }
}

#[test]
fn frontier_negative_controls_fail_against_the_same_ensemble() {
    // The frontier checks must be able to reject: (1) WFA — which
    // collapses at 86% load — cannot be the panel's delay floor; (2) COA
    // cannot sit within a vanishing factor of the MWM oracle.
    let (e, _) = ensemble();
    let high = CurveMetric::ClassDelayUs(TrafficClass::CbrHigh);
    let wfa_floor = Claim {
        id: "negative.wfa-is-the-floor",
        figure: Figure::Frontier,
        description: "artificially inverted: WFA is the panel's delay floor",
        check: Check::DelayFloor {
            panel: Panel::FrontierCbr,
            metric: high,
            oracle: ArbiterKind::Wfa,
            until_load: 0.86,
            slack: 1.5,
        },
    };
    let o = wfa_floor.evaluate(e);
    assert!(
        !o.pass,
        "WFA passed as the delay floor (median {:.2}) — DelayFloor cannot reject",
        o.median
    );
    assert!(o.margin < 0.0);

    let vanishing = Claim {
        id: "negative.coa-equals-mwm",
        figure: Figure::Frontier,
        description: "artificially tight: COA within 1.01x of the MWM oracle",
        check: Check::AtMostRatio {
            panel: Panel::FrontierCbr,
            metric: high,
            numerator: ArbiterKind::Coa,
            denominator: ArbiterKind::MwmExact,
            until_load: 0.86,
            max_ratio: 1.01,
        },
    };
    let o = vanishing.evaluate(e);
    assert!(
        !o.pass,
        "COA matched the oracle to 1% (median {:.4}) — AtMostRatio cannot reject",
        o.median
    );
}
