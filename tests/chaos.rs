//! Chaos tests: QoS-preserving degradation under seeded fault schedules.
//!
//! A deterministic `FaultPlan` aims credit faults at the best-effort
//! connections and link faults at the input ports while admitted CBR
//! traffic runs underneath.  The contract under test (DESIGN.md §10):
//!
//! * during the fault window, every *guaranteed* (reserved) connection
//!   keeps its delay bound — only best-effort absorbs the damage;
//! * after the window, every connection delivers again, the credit
//!   watchdog has resynchronized all counters, and a clean measurement
//!   window looks like a fault-free run.

use mmr_core::config::{BestEffortSpec, FaultSpec, RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::{build_router, build_workload, run_experiment};
use mmr_core::router::fault::FaultProfile;
use mmr_core::router::router::MmrRouter;
use mmr_core::sim::engine::CycleModel;
use mmr_core::sim::fault::{FaultEvent, FaultKind, FaultPlan, FaultPlanConfig};
use mmr_core::sim::rng::SimRng;
use mmr_core::sim::time::FlitCycle;

const WARMUP: u64 = 1_000;
const WINDOW_START: u64 = 1_000;
const WINDOW_END: u64 = 4_000;
// Long enough that even a 64 Kbps CbrLow source (one flit per ~19,400
// flit cycles) generates and delivers within the recovery window.
const RECOVERY_END: u64 = 30_000;
const DELAY_BOUND_FC: u64 = 128;

/// A router with CBR + best-effort traffic and a seeded fault schedule
/// aimed at the best-effort connections (credit faults) and the input
/// links (corruption/loss).
fn chaos_router(seed: u64) -> MmrRouter {
    let cfg = SimConfig {
        workload: WorkloadSpec::cbr(0.4),
        best_effort: Some(BestEffortSpec::default()),
        seed,
        ..Default::default()
    };
    let workload = build_workload(&cfg);
    let mut router = build_router(&cfg, workload);

    let best_effort: Vec<usize> = router
        .connections()
        .iter()
        .filter(|s| s.reserved_slots == 0)
        .map(|s| s.id.idx())
        .collect();
    assert!(!best_effort.is_empty(), "workload must carry best-effort");

    let mut rng = SimRng::seed_from_u64(seed ^ 0xC4A05);
    let at = |rng: &mut SimRng| WINDOW_START + rng.below(WINDOW_END - WINDOW_START);
    let mut events = Vec::new();
    for &conn in &best_effort {
        for _ in 0..3 {
            events.push(FaultEvent {
                at: at(&mut rng),
                kind: FaultKind::DropCredit { conn },
            });
            events.push(FaultEvent {
                at: at(&mut rng),
                kind: FaultKind::DuplicateCredit { conn },
            });
        }
    }
    for input in 0..router.config().ports {
        for _ in 0..4 {
            events.push(FaultEvent {
                at: at(&mut rng),
                kind: FaultKind::CorruptFlit { input },
            });
            events.push(FaultEvent {
                at: at(&mut rng),
                kind: FaultKind::DropFlit { input },
            });
        }
    }
    router.set_faults(
        FaultPlan::from_events(events),
        FaultProfile {
            delay_bound_flit_cycles: Some(DELAY_BOUND_FC),
            ..Default::default()
        },
    );
    router
}

fn run_phase(router: &mut MmrRouter, from: u64, to: u64) {
    router.on_measurement_start(FlitCycle(from));
    for t in from..to {
        router.step(FlitCycle(t), true);
    }
}

#[test]
fn guaranteed_connections_hold_delay_bounds_through_the_fault_window() {
    let mut router = chaos_router(21);
    for t in 0..WARMUP {
        router.step(FlitCycle(t), false);
    }

    // Fault window, measured in isolation.
    run_phase(&mut router, WINDOW_START, WINDOW_END);
    let report = router.fault_report();
    assert!(report.events_fired > 0, "schedule must fire");
    assert!(report.corrupted_flits > 0, "checksum must catch corruption");
    assert!(report.lost_flits() > 0);
    let violations = router.violations_per_connection().to_vec();
    let mut guaranteed_delivered = 0u64;
    for spec in router.connections() {
        let c = spec.id.idx();
        if spec.reserved_slots > 0 {
            assert_eq!(
                violations[c], 0,
                "guaranteed connection {c} broke its delay bound mid-faults"
            );
            guaranteed_delivered += router.delivered_per_connection()[c];
        }
    }
    assert!(
        guaranteed_delivered > 0,
        "guaranteed traffic must keep flowing through the fault window"
    );

    // Recovery: a clean measured window after the faults.
    run_phase(&mut router, WINDOW_END, RECOVERY_END);
    assert!(
        router.credits_consistent(),
        "watchdog must resynchronize every credit counter after the window"
    );
    let delivered = router.delivered_per_connection();
    for spec in router.connections() {
        let c = spec.id.idx();
        assert!(
            delivered[c] > 0,
            "connection {c} (reserved {}) starved after recovery",
            spec.reserved_slots
        );
        if spec.reserved_slots > 0 {
            assert_eq!(
                router.violations_per_connection()[c],
                0,
                "guaranteed connection {c} still violating after recovery"
            );
        }
    }
    // No faults fire post-window: the recovery segment adds no new damage.
    let post = router.fault_report();
    assert_eq!(post.corrupted_flits, 0);
    assert_eq!(post.dropped_flits, 0);
}

#[test]
fn chaos_runs_replay_bit_for_bit() {
    let run = |seed| {
        let mut router = chaos_router(seed);
        for t in 0..WARMUP {
            router.step(FlitCycle(t), false);
        }
        run_phase(&mut router, WINDOW_START, RECOVERY_END);
        router.summary()
    };
    let a = run(33);
    let b = run(33);
    assert_eq!(a, b, "same seed + plan must replay identically");
    assert!(a.faults.events_fired > 0);
    let c = run(34);
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn generated_fault_plans_recover_end_to_end() {
    // The randomized-plan path (FaultPlanConfig via SimConfig) at 4x the
    // default rates: detection fires, recovery holds, flits are conserved
    // (generated = delivered + backlog + lost-to-faults).
    let cfg = SimConfig {
        workload: WorkloadSpec::cbr(0.5),
        best_effort: Some(BestEffortSpec::default()),
        warmup_cycles: 0,
        run: RunLength::Cycles(20_000),
        fault: Some(
            FaultSpec {
                plan: FaultPlanConfig {
                    window_start: 2_000,
                    window_len: 10_000,
                    ..Default::default()
                },
                profile: FaultProfile {
                    delay_bound_flit_cycles: Some(DELAY_BOUND_FC),
                    ..Default::default()
                },
            }
            .scaled(4.0),
        ),
        ..Default::default()
    };
    let r = run_experiment(&cfg);
    let f = &r.summary.faults;
    assert!(f.events_fired > 0);
    assert!(f.corrupted_flits > 0);
    assert!(f.credit_resyncs > 0);
    assert_eq!(
        r.summary.generated_flits,
        r.summary.delivered_flits + r.summary.backlog_flits as u64 + f.lost_flits(),
        "flit conservation must hold under faults"
    );
    // The run keeps flowing: the vast majority of traffic still lands.
    assert!(r.summary.throughput_ratio() > 0.9);
}
