//! Reproducibility: identical seeds give bit-identical results across the
//! whole stack, including parallel sweeps; different seeds differ.

use mmr_core::arbiter::scheduler::ArbiterKind;
use mmr_core::config::{
    BestEffortSpec, EngineMode, FabricSpec, FaultSpec, InjectionKind, RunLength, SimConfig,
    TelemetrySpec, WorkloadSpec,
};
use mmr_core::experiment::{
    build_fabric, build_fabric_workload, build_router, build_workload, run_experiment,
    run_fabric_experiment, ExperimentResult,
};
use mmr_core::router::fabric::Topology;
use mmr_core::scenarios::{chaos, vbr_cycle_budget, Fidelity};
use mmr_core::sim::engine::{CycleModel, Runner, StopCondition};
use mmr_core::sim::time::FlitCycle;
use mmr_core::sweep::{run_all, sweep, SweepSpec};
use proptest::prelude::*;

fn quick(load: f64, seed: u64) -> SimConfig {
    SimConfig {
        workload: WorkloadSpec::cbr(load),
        warmup_cycles: 500,
        run: RunLength::Cycles(6_000),
        seed,
        ..Default::default()
    }
}

#[test]
fn experiments_are_bit_identical() {
    let cfg = quick(0.7, 42);
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(a, b);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

#[test]
fn vbr_experiments_are_bit_identical() {
    let cfg = SimConfig {
        workload: WorkloadSpec::Vbr {
            target_load: 0.5,
            gops: 1,
            injection: InjectionKind::BackToBack,
            enforce_peak: false,
        },
        warmup_cycles: 0,
        run: RunLength::UntilDrained {
            max_cycles: vbr_cycle_budget(1),
        },
        seed: 99,
        ..Default::default()
    };
    assert_eq!(run_experiment(&cfg), run_experiment(&cfg));
}

#[test]
fn different_seeds_build_different_workloads() {
    let a = build_workload(&quick(0.7, 1));
    let b = build_workload(&quick(0.7, 2));
    // Loads are near the target either way, but the mixes must differ.
    assert_ne!(
        a.connections, b.connections,
        "distinct seeds produced identical workloads"
    );
}

#[test]
fn parallel_sweep_is_deterministic() {
    let spec = SweepSpec {
        base: quick(0.5, 7),
        loads: vec![0.4, 0.6],
        arbiters: vec![ArbiterKind::Coa, ArbiterKind::Wfa],
        seeds: vec![7, 8],
    };
    let a = sweep(&spec);
    let b = sweep(&spec);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x, y,
            "parallel sweep nondeterminism at load {}",
            x.target_load
        );
    }
}

#[test]
fn chaos_experiments_are_bit_identical() {
    // Fault injection rides its own seeded RNG stream: the same seed and
    // FaultPlan must replay to byte-identical metrics, fault report
    // included.
    let cfg = chaos(Fidelity::Quick)
        .configs()
        .pop()
        .expect("chaos spec has at least one fault rate");
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert!(a.summary.faults.events_fired > 0, "faults must fire");
    assert_eq!(a, b);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "chaos serialization must be byte-identical"
    );
}

#[test]
fn chaos_sweep_is_identical_across_worker_counts() {
    // The same fault-rate sweep must produce identical results whether it
    // runs serially or fanned out across worker threads.
    let configs = chaos(Fidelity::Quick).configs();
    let serial = run_all(&configs, Some(1));
    let fanned = run_all(&configs, Some(4));
    assert_eq!(serial, fanned, "worker count changed chaos sweep results");
    assert!(serial.iter().any(|r| r.summary.faults.events_fired > 0));
}

#[test]
fn telemetry_arming_does_not_perturb_the_simulation() {
    // Telemetry is pure observation: arming it must leave every
    // simulated quantity bit-identical — summary, achieved load, the
    // lot.  Counter adds are branch-free masked writes and the probes
    // never touch the RNG, so the grant sequence cannot shift.
    let base = quick(0.7, 42);
    let armed_cfg = base.with_telemetry(TelemetrySpec::default());
    let plain = run_experiment(&base);
    let armed = run_experiment(&armed_cfg);
    assert!(plain.telemetry.is_none());
    let report = armed
        .telemetry
        .as_ref()
        .expect("armed run carries a report");
    assert!(report.counters.iter().any(|c| c.value > 0));
    assert_eq!(plain.summary, armed.summary);
    assert_eq!(plain.achieved_load, armed.achieved_load);
    assert_eq!(plain.connections, armed.connections);
    assert_eq!(plain.executed_cycles, armed.executed_cycles);
}

#[test]
fn telemetry_leaves_the_rng_stream_untouched() {
    // Stronger than output equality: after identical runs with telemetry
    // off and on, the router's RNG must sit at the same stream position —
    // proof that no probe consumed a draw.
    let cfg = quick(0.6, 9);
    let run = |cfg: &SimConfig| {
        let workload = build_workload(cfg);
        let mut router = build_router(cfg, workload);
        if let Some(t) = &cfg.telemetry {
            router.set_telemetry(t.to_config());
        }
        for t in 0..4_000 {
            router.step(FlitCycle(t), true);
        }
        router.rng_fingerprint()
    };
    let plain = run(&cfg);
    let armed = run(&cfg.with_telemetry(TelemetrySpec::default()));
    assert_eq!(plain, armed, "telemetry consumed an RNG draw");
}

#[test]
fn armed_telemetry_reports_are_bit_identical() {
    // With the deterministic null clock (wall_clock off, the default),
    // the telemetry report itself — counters, stage profile, kernel
    // stats, windows — replays byte-for-byte.
    let cfg = quick(0.5, 11).with_telemetry(TelemetrySpec::default());
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(a, b);
    assert_eq!(
        serde_json::to_string(&a.telemetry).unwrap(),
        serde_json::to_string(&b.telemetry).unwrap(),
        "telemetry report must replay byte-identically"
    );
}

#[test]
fn observatory_arming_does_not_perturb_the_simulation() {
    // The observatory adds per-delivery histogram and SLO bookkeeping on
    // top of plain telemetry; like the rest of the layer it must be pure
    // observation.  Compare observatory-on against observatory-off (both
    // armed) and against a fully disarmed run.
    let base = quick(0.7, 42);
    let off = base.with_telemetry(TelemetrySpec {
        observatory: false,
        ..TelemetrySpec::default()
    });
    let on = base.with_telemetry(TelemetrySpec::default());
    let plain = run_experiment(&base);
    let without = run_experiment(&off);
    let with = run_experiment(&on);
    assert!(with
        .telemetry
        .as_ref()
        .is_some_and(|t| t.observatory.is_some()));
    assert!(without
        .telemetry
        .as_ref()
        .is_some_and(|t| t.observatory.is_none()));
    for r in [&without, &with] {
        assert_eq!(plain.summary, r.summary);
        assert_eq!(plain.achieved_load, r.achieved_load);
        assert_eq!(plain.executed_cycles, r.executed_cycles);
    }
}

#[test]
fn observatory_leaves_the_rng_stream_untouched() {
    // Same RNG-position proof as the telemetry variant above, with the
    // per-delivery observatory hooks in the delivery path.
    let cfg = quick(0.6, 9);
    let run = |cfg: &SimConfig| {
        let workload = build_workload(cfg);
        let mut router = build_router(cfg, workload);
        if let Some(t) = &cfg.telemetry {
            router.set_telemetry(t.to_config());
        }
        for t in 0..4_000 {
            router.step(FlitCycle(t), true);
        }
        router.rng_fingerprint()
    };
    let plain = run(&cfg);
    let armed = run(&cfg.with_telemetry(TelemetrySpec::default()));
    let observatory_off = run(&cfg.with_telemetry(TelemetrySpec {
        observatory: false,
        ..TelemetrySpec::default()
    }));
    assert_eq!(plain, armed, "the observatory consumed an RNG draw");
    assert_eq!(plain, observatory_off);
}

#[test]
fn prometheus_exposition_replays_byte_identically() {
    // The exposition is rendered from the deterministic report, so two
    // identical runs must produce the same bytes — histogram buckets,
    // float formatting, family order, the lot.
    let cfg = quick(0.5, 11).with_telemetry(TelemetrySpec::default());
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    let ea = a.prometheus();
    let eb = b.prometheus();
    assert!(!ea.is_empty());
    assert_eq!(ea, eb, "exposition must replay byte-identically");
}

// ---------------------------------------------------------------------------
// Event-horizon differential: the fast-forwarding loop and the reference
// cycle-by-cycle loop must be observationally indistinguishable — the
// full ExperimentResult (summary, metrics, fault report, armed telemetry
// report) and the router's RNG stream position replay bit-for-bit.  This
// is the non-negotiable half of the horizon contract (DESIGN.md §12):
// a skip may only cover cycles that would have been complete no-ops.

/// Run `cfg` under `mode`, then blank the engine field so results from
/// the two loops compare structurally (it is the one config field that
/// legitimately differs).
fn run_with_engine(cfg: &SimConfig, mode: EngineMode) -> ExperimentResult {
    let mut r = run_experiment(&cfg.with_engine(mode));
    r.config.engine = None;
    r
}

fn assert_engines_agree(cfg: &SimConfig) {
    let horizon = run_with_engine(cfg, EngineMode::EventHorizon);
    let naive = run_with_engine(cfg, EngineMode::CycleByCycle);
    assert_eq!(
        horizon, naive,
        "engines diverged for workload {:?} seed {} fault {:?}",
        cfg.workload, cfg.seed, cfg.fault
    );
    assert_eq!(
        serde_json::to_string(&horizon).unwrap(),
        serde_json::to_string(&naive).unwrap(),
        "engine divergence visible only in serialized bytes (seed {})",
        cfg.seed
    );
}

#[test]
fn horizon_engine_leaves_the_rng_stream_identical() {
    // Stronger than result equality: after both loops the arbitration RNG
    // must sit at the same stream position, proving skipped cycles would
    // not have consumed a draw.
    for &load in &[0.05, 0.3, 0.7] {
        let cfg = quick(load, 13);
        let fingerprint = |horizon: bool| {
            let workload = build_workload(&cfg);
            let mut router = build_router(&cfg, workload);
            let runner = Runner::new(cfg.warmup_cycles, StopCondition::Cycles(6_000));
            let outcome = if horizon {
                runner.run_horizon(&mut router)
            } else {
                runner.run(&mut router)
            };
            (router.rng_fingerprint(), outcome.executed)
        };
        assert_eq!(
            fingerprint(true),
            fingerprint(false),
            "RNG stream diverged at load {load}"
        );
    }
}

#[test]
fn horizon_engine_matches_cycle_by_cycle_across_config_corpus() {
    // A fixed corpus of 50+ seeded configs spanning every regime the
    // engine must fast-forward through: CBR at idle-heavy and saturated
    // loads, both arbiters, VBR drain runs, best-effort scavengers, armed
    // telemetry (so skips cross snapshot-window boundaries mid-window),
    // and chaos runs where the fault horizon gates the skip.
    let corpus_cbr = |load: f64, seed: u64| SimConfig {
        workload: WorkloadSpec::cbr(load),
        warmup_cycles: 300,
        run: RunLength::Cycles(4_000),
        seed,
        ..Default::default()
    };
    let mut corpus: Vec<SimConfig> = Vec::new();
    // CBR grid: 4 loads x 4 seeds.
    for &load in &[0.15, 0.4, 0.7, 0.9] {
        for seed in 0..4 {
            corpus.push(corpus_cbr(load, 100 + seed));
        }
    }
    // Near-zero load: the deepest quiescent stretches.
    for seed in 0..6 {
        corpus.push(corpus_cbr(0.05, 40 + seed));
    }
    // WFA at a skip-heavy load.
    for seed in 0..4 {
        corpus.push(corpus_cbr(0.2, seed).with_arbiter(ArbiterKind::Wfa));
    }
    // Frontier arbiters: the MWM oracle pair plus the stateful frame-fair
    // and crosspoint-queued schedulers.  The latter two age internal state
    // only on busy cycles (frame clocks, queue pressures), so a skip that
    // fails to preserve "no-op cycle ⇒ no state change" diverges here.
    for (seed, kind) in [
        (700, ArbiterKind::MwmExact),
        (701, ArbiterKind::MwmApprox),
        (702, ArbiterKind::FrameFair { frame: 64 }),
        (703, ArbiterKind::FrameFair { frame: 3 }),
        (704, ArbiterKind::CrosspointQueued { cap: 16 }),
        (705, ArbiterKind::CrosspointQueued { cap: 1 }),
    ] {
        corpus.push(corpus_cbr(0.25, seed).with_arbiter(kind));
        corpus.push(corpus_cbr(0.7, seed).with_arbiter(kind));
    }
    // Armed telemetry with an interval that forces mid-window skips.
    for &load in &[0.1, 0.3] {
        for seed in 0..3 {
            corpus.push(corpus_cbr(load, 200 + seed).with_telemetry(TelemetrySpec {
                snapshot_interval: 700,
                ..TelemetrySpec::default()
            }));
        }
    }
    // VBR runs that drain completely (the horizon must stop exactly where
    // the model reports done).
    for seed in 0..3 {
        corpus.push(SimConfig {
            workload: WorkloadSpec::Vbr {
                target_load: 0.3,
                gops: 1,
                injection: InjectionKind::BackToBack,
                enforce_peak: false,
            },
            warmup_cycles: 0,
            run: RunLength::UntilDrained {
                max_cycles: vbr_cycle_budget(1),
            },
            seed: 70 + seed,
            ..Default::default()
        });
    }
    // Best-effort traffic on top of a reserved CBR mix.
    for seed in 0..4 {
        corpus.push(SimConfig {
            best_effort: Some(BestEffortSpec {
                per_link_load: 0.15,
                mean_flits: 6.0,
            }),
            ..corpus_cbr(0.3, 300 + seed)
        });
    }
    // Chaos: default and hotter fault rates, one batch with telemetry,
    // one at a load low enough that faults dominate the horizon.
    for seed in 0..6 {
        corpus.push(corpus_cbr(0.5, 400 + seed).with_fault(FaultSpec::default()));
    }
    for seed in 0..3 {
        corpus.push(
            corpus_cbr(0.5, 500 + seed)
                .with_fault(FaultSpec::default().scaled(2.0))
                .with_telemetry(TelemetrySpec::default()),
        );
    }
    for seed in 0..4 {
        corpus.push(corpus_cbr(0.1, 600 + seed).with_fault(FaultSpec::default()));
    }

    assert!(
        corpus.len() >= 50,
        "corpus must span at least 50 configs, has {}",
        corpus.len()
    );
    for cfg in &corpus {
        assert_engines_agree(cfg);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn horizon_engine_matches_cycle_by_cycle_on_random_triples(
        load in 0.05f64..0.95,
        seed in 0u64..100_000,
        fault_scale in 0.0f64..3.0,
        snapshot_interval in 150u64..2_000,
        arm in 0u8..4,
    ) {
        // A random (config, seed, fault-plan) triple.  `arm` picks the
        // optional machinery: bit 0 arms a randomized fault plan, bit 1
        // arms telemetry with a random window length (so fast-forwards
        // land mid-window and must bulk-roll snapshots correctly).
        let mut cfg = SimConfig {
            workload: WorkloadSpec::cbr(load),
            warmup_cycles: 300,
            run: RunLength::Cycles(4_000),
            seed,
            ..Default::default()
        };
        if arm & 1 != 0 {
            cfg.fault = Some(FaultSpec::default().scaled(0.5 + fault_scale));
        }
        if arm & 2 != 0 {
            cfg.telemetry = Some(TelemetrySpec {
                snapshot_interval,
                ..TelemetrySpec::default()
            });
        }
        let horizon = run_with_engine(&cfg, EngineMode::EventHorizon);
        let naive = run_with_engine(&cfg, EngineMode::CycleByCycle);
        prop_assert_eq!(&horizon, &naive);
        prop_assert_eq!(
            serde_json::to_string(&horizon).unwrap(),
            serde_json::to_string(&naive).unwrap()
        );
    }
}

#[test]
fn arbiter_rng_does_not_leak_into_workload() {
    // The workload RNG and the arbitration RNG are separate streams: the
    // same seed must admit the same connections regardless of arbiter.
    let coa = run_experiment(&quick(0.6, 5));
    let wfa = run_experiment(&quick(0.6, 5).with_arbiter(ArbiterKind::Wfa));
    assert_eq!(coa.connections, wfa.connections);
    assert_eq!(coa.achieved_load, wfa.achieved_load);
}

// ---------------------------------------------------------------------------
// Fabric determinism: bit-identity across worker counts and engine modes.
// ---------------------------------------------------------------------------

fn fabric_cfg(load: f64, seed: u64) -> SimConfig {
    quick(load, seed).with_fabric(FabricSpec::new(Topology::Mesh { x: 4, y: 4 }))
}

/// Everything observable about one fabric run: the serialized summary,
/// the per-router RNG fingerprints, and the engine accounting.
fn fabric_probe(cfg: &SimConfig, workers: usize, horizon: bool) -> (String, Vec<u64>, u64, u64) {
    let spec = cfg.fabric.expect("fabric spec");
    let (RunLength::Cycles(cycles) | RunLength::UntilDrained { max_cycles: cycles }) = cfg.run;
    let mut fabric = build_fabric(cfg, &spec, build_fabric_workload(cfg, &spec));
    let out = fabric.run_parallel(cfg.warmup_cycles, cycles, workers, horizon);
    (
        serde_json::to_string(&fabric.summary()).expect("summary serializes"),
        fabric.rng_fingerprints(),
        out.executed,
        out.measured,
    )
}

#[test]
fn fabric_is_byte_identical_across_worker_counts() {
    for &(load, seed) in &[(0.3, 21u64), (0.6, 22)] {
        let cfg = fabric_cfg(load, seed);
        let base = fabric_probe(&cfg, 1, false);
        for workers in [2usize, 8] {
            let probe = fabric_probe(&cfg, workers, false);
            assert_eq!(
                base, probe,
                "fabric diverged at {workers} workers (load {load}, seed {seed})"
            );
        }
    }
}

#[test]
fn fabric_engine_modes_agree_with_each_other_and_with_the_runner() {
    let cfg = fabric_cfg(0.4, 23);
    let spec = cfg.fabric.unwrap();
    let (RunLength::Cycles(cycles) | RunLength::UntilDrained { max_cycles: cycles }) = cfg.run;
    // Reference: the sequential Runner driving the fabric as a CycleModel,
    // in both of its loops.
    let runner_probe = |horizon: bool| {
        let mut fabric = build_fabric(&cfg, &spec, build_fabric_workload(&cfg, &spec));
        let runner = Runner::new(cfg.warmup_cycles, StopCondition::Cycles(cycles));
        let out = if horizon {
            runner.run_horizon(&mut fabric)
        } else {
            runner.run(&mut fabric)
        };
        (
            serde_json::to_string(&fabric.summary()).expect("serializes"),
            fabric.rng_fingerprints(),
            out.executed,
        )
    };
    let naive = runner_probe(false);
    let horizon = runner_probe(true);
    assert_eq!(naive, horizon, "Runner loops diverged on the fabric");
    // run_parallel in both modes, at several worker counts, must land on
    // the same state (executed-cycle accounting included: every mode
    // advances through all `cycles`).
    for workers in [1usize, 2, 8] {
        for h in [false, true] {
            let p = fabric_probe(&cfg, workers, h);
            assert_eq!(
                (&naive.0, &naive.1, naive.2),
                (&p.0, &p.1, p.2),
                "run_parallel({workers}, horizon={h}) diverged from the Runner"
            );
        }
    }
}

#[test]
fn fabric_per_router_rng_fingerprints_are_stable() {
    // The per-router arbitration streams are split deterministically off
    // the master seed: same seed -> same fingerprints, different seed ->
    // different fingerprints (and node count matches the topology).
    let a = fabric_probe(&fabric_cfg(0.5, 31), 2, true);
    let b = fabric_probe(&fabric_cfg(0.5, 31), 8, true);
    let c = fabric_probe(&fabric_cfg(0.5, 32), 2, true);
    assert_eq!(a.1, b.1);
    assert_eq!(a.1.len(), 16, "one fingerprint per router");
    assert_ne!(a.1, c.1, "distinct seeds must shift the RNG streams");
}

#[test]
fn fabric_experiments_are_bit_identical() {
    let cfg = fabric_cfg(0.5, 33);
    let a = run_fabric_experiment(&cfg);
    let b = run_fabric_experiment(&cfg);
    assert_eq!(a, b);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}
