//! Reproducibility: identical seeds give bit-identical results across the
//! whole stack, including parallel sweeps; different seeds differ.

use mmr_core::arbiter::scheduler::ArbiterKind;
use mmr_core::config::{InjectionKind, RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::{build_workload, run_experiment};
use mmr_core::scenarios::{chaos, vbr_cycle_budget, Fidelity};
use mmr_core::sweep::{run_all, sweep, SweepSpec};

fn quick(load: f64, seed: u64) -> SimConfig {
    SimConfig {
        workload: WorkloadSpec::cbr(load),
        warmup_cycles: 500,
        run: RunLength::Cycles(6_000),
        seed,
        ..Default::default()
    }
}

#[test]
fn experiments_are_bit_identical() {
    let cfg = quick(0.7, 42);
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(a, b);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

#[test]
fn vbr_experiments_are_bit_identical() {
    let cfg = SimConfig {
        workload: WorkloadSpec::Vbr {
            target_load: 0.5,
            gops: 1,
            injection: InjectionKind::BackToBack,
            enforce_peak: false,
        },
        warmup_cycles: 0,
        run: RunLength::UntilDrained {
            max_cycles: vbr_cycle_budget(1),
        },
        seed: 99,
        ..Default::default()
    };
    assert_eq!(run_experiment(&cfg), run_experiment(&cfg));
}

#[test]
fn different_seeds_build_different_workloads() {
    let a = build_workload(&quick(0.7, 1));
    let b = build_workload(&quick(0.7, 2));
    // Loads are near the target either way, but the mixes must differ.
    assert_ne!(
        a.connections, b.connections,
        "distinct seeds produced identical workloads"
    );
}

#[test]
fn parallel_sweep_is_deterministic() {
    let spec = SweepSpec {
        base: quick(0.5, 7),
        loads: vec![0.4, 0.6],
        arbiters: vec![ArbiterKind::Coa, ArbiterKind::Wfa],
        seeds: vec![7, 8],
    };
    let a = sweep(&spec);
    let b = sweep(&spec);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x, y,
            "parallel sweep nondeterminism at load {}",
            x.target_load
        );
    }
}

#[test]
fn chaos_experiments_are_bit_identical() {
    // Fault injection rides its own seeded RNG stream: the same seed and
    // FaultPlan must replay to byte-identical metrics, fault report
    // included.
    let cfg = chaos(Fidelity::Quick)
        .configs()
        .pop()
        .expect("chaos spec has at least one fault rate");
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert!(a.summary.faults.events_fired > 0, "faults must fire");
    assert_eq!(a, b);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "chaos serialization must be byte-identical"
    );
}

#[test]
fn chaos_sweep_is_identical_across_worker_counts() {
    // The same fault-rate sweep must produce identical results whether it
    // runs serially or fanned out across worker threads.
    let configs = chaos(Fidelity::Quick).configs();
    let serial = run_all(&configs, Some(1));
    let fanned = run_all(&configs, Some(4));
    assert_eq!(serial, fanned, "worker count changed chaos sweep results");
    assert!(serial.iter().any(|r| r.summary.faults.events_fired > 0));
}

#[test]
fn arbiter_rng_does_not_leak_into_workload() {
    // The workload RNG and the arbitration RNG are separate streams: the
    // same seed must admit the same connections regardless of arbiter.
    let coa = run_experiment(&quick(0.6, 5));
    let wfa = run_experiment(&quick(0.6, 5).with_arbiter(ArbiterKind::Wfa));
    assert_eq!(coa.connections, wfa.connections);
    assert_eq!(coa.achieved_load, wfa.achieved_load);
}
