//! Reproducibility: identical seeds give bit-identical results across the
//! whole stack, including parallel sweeps; different seeds differ.

use mmr_core::arbiter::scheduler::ArbiterKind;
use mmr_core::config::{InjectionKind, RunLength, SimConfig, TelemetrySpec, WorkloadSpec};
use mmr_core::experiment::{build_router, build_workload, run_experiment};
use mmr_core::scenarios::{chaos, vbr_cycle_budget, Fidelity};
use mmr_core::sim::engine::CycleModel;
use mmr_core::sim::time::FlitCycle;
use mmr_core::sweep::{run_all, sweep, SweepSpec};

fn quick(load: f64, seed: u64) -> SimConfig {
    SimConfig {
        workload: WorkloadSpec::cbr(load),
        warmup_cycles: 500,
        run: RunLength::Cycles(6_000),
        seed,
        ..Default::default()
    }
}

#[test]
fn experiments_are_bit_identical() {
    let cfg = quick(0.7, 42);
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(a, b);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

#[test]
fn vbr_experiments_are_bit_identical() {
    let cfg = SimConfig {
        workload: WorkloadSpec::Vbr {
            target_load: 0.5,
            gops: 1,
            injection: InjectionKind::BackToBack,
            enforce_peak: false,
        },
        warmup_cycles: 0,
        run: RunLength::UntilDrained {
            max_cycles: vbr_cycle_budget(1),
        },
        seed: 99,
        ..Default::default()
    };
    assert_eq!(run_experiment(&cfg), run_experiment(&cfg));
}

#[test]
fn different_seeds_build_different_workloads() {
    let a = build_workload(&quick(0.7, 1));
    let b = build_workload(&quick(0.7, 2));
    // Loads are near the target either way, but the mixes must differ.
    assert_ne!(
        a.connections, b.connections,
        "distinct seeds produced identical workloads"
    );
}

#[test]
fn parallel_sweep_is_deterministic() {
    let spec = SweepSpec {
        base: quick(0.5, 7),
        loads: vec![0.4, 0.6],
        arbiters: vec![ArbiterKind::Coa, ArbiterKind::Wfa],
        seeds: vec![7, 8],
    };
    let a = sweep(&spec);
    let b = sweep(&spec);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x, y,
            "parallel sweep nondeterminism at load {}",
            x.target_load
        );
    }
}

#[test]
fn chaos_experiments_are_bit_identical() {
    // Fault injection rides its own seeded RNG stream: the same seed and
    // FaultPlan must replay to byte-identical metrics, fault report
    // included.
    let cfg = chaos(Fidelity::Quick)
        .configs()
        .pop()
        .expect("chaos spec has at least one fault rate");
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert!(a.summary.faults.events_fired > 0, "faults must fire");
    assert_eq!(a, b);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "chaos serialization must be byte-identical"
    );
}

#[test]
fn chaos_sweep_is_identical_across_worker_counts() {
    // The same fault-rate sweep must produce identical results whether it
    // runs serially or fanned out across worker threads.
    let configs = chaos(Fidelity::Quick).configs();
    let serial = run_all(&configs, Some(1));
    let fanned = run_all(&configs, Some(4));
    assert_eq!(serial, fanned, "worker count changed chaos sweep results");
    assert!(serial.iter().any(|r| r.summary.faults.events_fired > 0));
}

#[test]
fn telemetry_arming_does_not_perturb_the_simulation() {
    // Telemetry is pure observation: arming it must leave every
    // simulated quantity bit-identical — summary, achieved load, the
    // lot.  Counter adds are branch-free masked writes and the probes
    // never touch the RNG, so the grant sequence cannot shift.
    let base = quick(0.7, 42);
    let armed_cfg = base.with_telemetry(TelemetrySpec::default());
    let plain = run_experiment(&base);
    let armed = run_experiment(&armed_cfg);
    assert!(plain.telemetry.is_none());
    let report = armed
        .telemetry
        .as_ref()
        .expect("armed run carries a report");
    assert!(report.counters.iter().any(|c| c.value > 0));
    assert_eq!(plain.summary, armed.summary);
    assert_eq!(plain.achieved_load, armed.achieved_load);
    assert_eq!(plain.connections, armed.connections);
    assert_eq!(plain.executed_cycles, armed.executed_cycles);
}

#[test]
fn telemetry_leaves_the_rng_stream_untouched() {
    // Stronger than output equality: after identical runs with telemetry
    // off and on, the router's RNG must sit at the same stream position —
    // proof that no probe consumed a draw.
    let cfg = quick(0.6, 9);
    let run = |cfg: &SimConfig| {
        let workload = build_workload(cfg);
        let mut router = build_router(cfg, workload);
        if let Some(t) = &cfg.telemetry {
            router.set_telemetry(t.to_config());
        }
        for t in 0..4_000 {
            router.step(FlitCycle(t), true);
        }
        router.rng_fingerprint()
    };
    let plain = run(&cfg);
    let armed = run(&cfg.with_telemetry(TelemetrySpec::default()));
    assert_eq!(plain, armed, "telemetry consumed an RNG draw");
}

#[test]
fn armed_telemetry_reports_are_bit_identical() {
    // With the deterministic null clock (wall_clock off, the default),
    // the telemetry report itself — counters, stage profile, kernel
    // stats, windows — replays byte-for-byte.
    let cfg = quick(0.5, 11).with_telemetry(TelemetrySpec::default());
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(a, b);
    assert_eq!(
        serde_json::to_string(&a.telemetry).unwrap(),
        serde_json::to_string(&b.telemetry).unwrap(),
        "telemetry report must replay byte-identically"
    );
}

#[test]
fn arbiter_rng_does_not_leak_into_workload() {
    // The workload RNG and the arbitration RNG are separate streams: the
    // same seed must admit the same connections regardless of arbiter.
    let coa = run_experiment(&quick(0.6, 5));
    let wfa = run_experiment(&quick(0.6, 5).with_arbiter(ArbiterKind::Wfa));
    assert_eq!(coa.connections, wfa.connections);
    assert_eq!(coa.achieved_load, wfa.achieved_load);
}
