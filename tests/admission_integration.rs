//! Admission-control integration: the workload builders must never
//! over-book a link, and the resulting traffic must respect what was
//! admitted.

use mmr_core::config::{InjectionKind, RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::{build_workload, run_experiment};
use mmr_core::sim::rng::SimRng;
use mmr_core::sim::time::TimeBase;
use mmr_core::sim::units::Bandwidth;
use mmr_core::traffic::admission::RoundConfig;
use mmr_core::traffic::workload::{CbrMixBuilder, VbrMixBuilder};

#[test]
fn no_link_is_ever_overbooked() {
    // Even asking for 100% load, per-link average-slot bookings stay
    // within the round on both sides.
    let tb = TimeBase::default();
    let link = Bandwidth::bps(tb.link_bits_per_sec);
    for seed in 0..5u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let w = CbrMixBuilder::new(4, tb, RoundConfig::default())
            .target_load(1.0)
            .build(&mut rng);
        // Recompute per-link sums from the admitted specs.
        let mut in_bw = [Bandwidth::bps(0.0); 4];
        let mut out_bw = [Bandwidth::bps(0.0); 4];
        for c in &w.connections {
            in_bw[c.input] += c.qos.avg;
            out_bw[c.output] += c.qos.avg;
        }
        for p in 0..4 {
            assert!(
                in_bw[p].fraction_of(link) <= 1.0 + 1e-9,
                "seed {seed}: input {p} booked {:.3}",
                in_bw[p].fraction_of(link)
            );
            assert!(
                out_bw[p].fraction_of(link) <= 1.0 + 1e-9,
                "seed {seed}: output {p} booked {:.3}",
                out_bw[p].fraction_of(link)
            );
        }
    }
}

#[test]
fn achieved_load_reflects_admitted_bandwidth() {
    let cfg = SimConfig {
        workload: WorkloadSpec::cbr(0.65),
        run: RunLength::Cycles(1_000),
        warmup_cycles: 0,
        ..Default::default()
    };
    let w = build_workload(&cfg);
    let tb = TimeBase::default();
    let link = tb.link_bits_per_sec;
    // Mean over inputs of (sum of admitted avg bandwidth / link bw) must
    // equal the reported per-input loads (within slot-quantization error:
    // reserved slots round bandwidth *up*).
    let mut per_input = vec![0.0f64; 4];
    for c in &w.connections {
        per_input[c.input] += c.qos.avg.as_bps() / link;
    }
    for (p, (&reported, computed)) in w.per_input_load.iter().zip(per_input).enumerate() {
        assert!(
            (reported - computed).abs() < 0.02,
            "input {p}: reported {reported:.4} vs computed {computed:.4}"
        );
    }
}

#[test]
fn reserved_slots_cover_connection_bandwidth() {
    // Slot reservations round up: slots x slot_bw >= avg bandwidth.
    let cfg = SimConfig::default();
    let w = build_workload(&cfg);
    let tb = TimeBase::default();
    let round = RoundConfig::default();
    let slot_bw = round.slot_bandwidth(&tb).as_bps();
    for c in &w.connections {
        let reserved = c.reserved_slots as f64 * slot_bw;
        assert!(
            reserved >= c.qos.avg.as_bps() - 1e-6,
            "connection {:?}: reserved {reserved} < requested {}",
            c.id,
            c.qos.avg.as_bps()
        );
        // ...but never more than one slot extra.
        assert!(reserved < c.qos.avg.as_bps() + slot_bw);
    }
}

#[test]
fn vbr_peak_enforcement_reduces_admitted_connections() {
    let tb = TimeBase::default();
    let round = RoundConfig {
        concurrency_factor: 1.2,
        ..Default::default()
    };
    let mut rng_a = SimRng::seed_from_u64(3);
    let mut rng_b = SimRng::seed_from_u64(3);
    let open = VbrMixBuilder::new(4, tb, round)
        .target_load(0.9)
        .gops(1)
        .build(&mut rng_a);
    let gated = VbrMixBuilder::new(4, tb, round)
        .target_load(0.9)
        .gops(1)
        .enforce_peak(true)
        .build(&mut rng_b);
    assert!(
        gated.len() < open.len(),
        "peak test must bite: {} vs {}",
        gated.len(),
        open.len()
    );
    assert!(gated.mean_load() < open.mean_load());
}

#[test]
fn admission_is_identical_across_engine_modes() {
    // Admission runs before the first cycle, so the engine choice must
    // be invisible to it: the same config admits the same connection
    // set (count, reserved slots, per-input loads) whether the run is
    // cycle-by-cycle or event-horizon — including at high load, where
    // rejections shape the set, and with the VBR peak test biting.
    use mmr_core::config::EngineMode;
    let cases = [
        SimConfig {
            workload: WorkloadSpec::cbr(0.95),
            run: RunLength::Cycles(2_000),
            warmup_cycles: 100,
            ..Default::default()
        },
        SimConfig {
            workload: WorkloadSpec::Vbr {
                target_load: 0.85,
                gops: 1,
                injection: InjectionKind::BackToBack,
                enforce_peak: true,
            },
            warmup_cycles: 0,
            run: RunLength::UntilDrained {
                max_cycles: mmr_core::scenarios::vbr_cycle_budget(1),
            },
            ..Default::default()
        },
    ];
    for base in cases {
        let slow = run_experiment(&SimConfig {
            engine: Some(EngineMode::CycleByCycle),
            ..base.clone()
        });
        let fast = run_experiment(&SimConfig {
            engine: Some(EngineMode::EventHorizon),
            ..base.clone()
        });
        assert_eq!(
            slow.connections, fast.connections,
            "engine mode changed the admitted connection count"
        );
        assert_eq!(
            slow.achieved_load, fast.achieved_load,
            "engine mode changed the admitted load"
        );
        // The workload builder itself is engine-agnostic: same specs,
        // same reservations, connection for connection.
        let wa = build_workload(&slow.config);
        let wb = build_workload(&fast.config);
        assert_eq!(wa.connections.len(), wb.connections.len());
        for (a, b) in wa.connections.iter().zip(&wb.connections) {
            assert_eq!(a.id, b.id);
            assert_eq!((a.input, a.output), (b.input, b.output));
            assert_eq!(a.reserved_slots, b.reserved_slots);
        }
        assert_eq!(wa.per_input_load, wb.per_input_load);
    }
}

#[test]
fn admitted_vbr_load_matches_generated_traffic() {
    // The traffic actually generated by the sources matches the average
    // bandwidth the CAC admitted (within ~10%: the trace is stochastic).
    let cfg = SimConfig {
        workload: WorkloadSpec::Vbr {
            target_load: 0.5,
            gops: 2,
            injection: InjectionKind::SmoothRate,
            enforce_peak: false,
        },
        warmup_cycles: 0,
        run: RunLength::UntilDrained {
            max_cycles: mmr_core::scenarios::vbr_cycle_budget(2),
        },
        ..Default::default()
    };
    let r = run_experiment(&cfg);
    assert!(r.drained);
    // generated flits x flit bits / simulated time ≈ achieved_load x 4 links.
    let tb = TimeBase::default();
    let sim_secs = r.executed_cycles as f64 * tb.flit_cycle_secs();
    let offered_bps = r.summary.generated_flits as f64 * 1024.0 / sim_secs;
    let expected_bps = r.achieved_load * tb.link_bits_per_sec * 4.0;
    // The run includes drain tail (no generation), so offered <= expected;
    // allow a wide but meaningful band.
    assert!(
        offered_bps > expected_bps * 0.3 && offered_bps < expected_bps * 1.15,
        "offered {offered_bps:.0} vs admitted {expected_bps:.0}"
    );
}
