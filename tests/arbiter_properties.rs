//! Property-based tests (proptest) on the scheduling invariants.

use mmr_core::arbiter::candidate::{Candidate, CandidateSet, Priority};
use mmr_core::arbiter::mwm::{matching_weight, priority_bounds, shaped_weight};
use mmr_core::arbiter::priority::{Iabp, LinkPriority, Siabp};
use mmr_core::arbiter::scheduler::ArbiterKind;
use mmr_core::sim::rng::SimRng;
use proptest::prelude::*;

/// The maximum total frontier weight over **all** matchings of the
/// candidate request graph, found by exhaustive recursion: every input
/// either takes one of its still-free requested outputs or stays
/// unmatched.  Exponential, so only run at small port counts — this is
/// the ground truth the MWM-exact kernel is checked against.
fn brute_force_max_weight(cs: &CandidateSet) -> f64 {
    let ports = cs.ports();
    let (floor, ceil) = priority_bounds(cs);
    let mut edges: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ports];
    for (input, row) in edges.iter_mut().enumerate() {
        for output in 0..ports {
            if let Some(c) = cs.best_for(input, output) {
                row.push((output, shaped_weight(c.priority.0, floor, ceil, ports)));
            }
        }
    }
    fn rec(input: usize, edges: &[Vec<(usize, f64)>], used: &mut [bool]) -> f64 {
        if input == edges.len() {
            return 0.0;
        }
        // Leave this input unmatched…
        let mut best = rec(input + 1, edges, used);
        // …or match it to any free requested output.
        for &(output, w) in &edges[input] {
            if !used[output] {
                used[output] = true;
                best = best.max(w + rec(input + 1, edges, used));
                used[output] = false;
            }
        }
        best
    }
    let mut used = vec![false; ports];
    rec(0, &edges, &mut used)
}

/// Explicit replay of the regression corpus
/// (`tests/arbiter_properties.proptest-regressions`).
///
/// The vendored proptest shim does NOT auto-read `.proptest-regressions`
/// files (see `tests/README.md`), so every case recorded there must also
/// be transcribed here as a plain test.  This one is the corpus's single
/// entry — the shrunk counterexample that once broke SIABP monotonicity
/// (`slots_a = 256, slots_b = 5, d1 = 281474976710656, d2 = 0`): an
/// enormous accumulated delay overwhelming the reservation term.
#[test]
fn regression_corpus_siabp_monotone_replay() {
    let (slots_a, slots_b) = (256u64, 5u64);
    let (d1, d2) = (281_474_976_710_656u64, 0u64);
    let (lo_d, hi_d) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
    assert!(Siabp.priority(slots_a, 1.0, lo_d) <= Siabp.priority(slots_a, 1.0, hi_d));
    let (lo_s, hi_s) = if slots_a <= slots_b {
        (slots_a, slots_b)
    } else {
        (slots_b, slots_a)
    };
    assert!(Siabp.priority(lo_s, 1.0, d1) <= Siabp.priority(hi_s, 1.0, d1));
}

/// Strategy: a random candidate set for a `ports`-port router.
fn candidate_set_strategy(ports: usize, levels: usize) -> impl Strategy<Value = CandidateSet> {
    // Per input: up to `levels` (output, priority) pairs.
    let per_input = proptest::collection::vec((0..ports, 0u64..1_000_000), 0..=levels);
    proptest::collection::vec(per_input, ports).prop_map(move |inputs| {
        let mut cs = CandidateSet::new(ports, levels);
        for (input, cands) in inputs.into_iter().enumerate() {
            let mut cands: Vec<Candidate> = cands
                .into_iter()
                .enumerate()
                .map(|(vc, (output, prio))| Candidate {
                    input,
                    vc,
                    output,
                    priority: Priority::new(prio as f64),
                })
                .collect();
            cands.sort_by_key(|c| core::cmp::Reverse(c.priority));
            cs.set_input(input, &cands);
        }
        cs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_arbiters_produce_consistent_conflict_free_matchings(
        cs in candidate_set_strategy(4, 4),
        seed in 0u64..1000,
    ) {
        for kind in ArbiterKind::all() {
            let mut sched = kind.instantiate(4);
            let mut rng = SimRng::seed_from_u64(seed);
            let m = sched.schedule(&cs, &mut rng);
            // Conflict-freedom is enforced by Matching::add; consistency
            // says every grant names a real candidate.
            prop_assert!(m.is_consistent_with(&cs), "{} inconsistent", kind.label());
            prop_assert!(m.size() <= 4);
        }
    }

    #[test]
    fn maximal_arbiters_leave_no_grantable_pair(
        cs in candidate_set_strategy(4, 4),
        seed in 0u64..1000,
    ) {
        // COA, WFA, Greedy and Random produce maximal matchings on the
        // request graph.
        for kind in [ArbiterKind::Coa, ArbiterKind::Wfa, ArbiterKind::GreedyPriority, ArbiterKind::Random] {
            let mut sched = kind.instantiate(4);
            let mut rng = SimRng::seed_from_u64(seed);
            let m = sched.schedule(&cs, &mut rng);
            for c in cs.iter() {
                prop_assert!(
                    m.input_matched(c.input) || m.output_matched(c.output),
                    "{}: candidate {:?} links free ports",
                    kind.label(),
                    c
                );
            }
        }
    }

    #[test]
    fn islip_converges_to_maximal_with_enough_iterations(
        cs in candidate_set_strategy(4, 4),
        seed in 0u64..1000,
    ) {
        // With `ports` iterations iSLIP cannot leave a grantable pair.
        let mut sched = ArbiterKind::Islip { iterations: 4 }.instantiate(4);
        let mut rng = SimRng::seed_from_u64(seed);
        let m = sched.schedule(&cs, &mut rng);
        for c in cs.iter() {
            prop_assert!(m.input_matched(c.input) || m.output_matched(c.output));
        }
    }

    #[test]
    fn coa_grants_single_contended_output_to_top_priority(
        prios in proptest::collection::vec(0u64..1_000_000, 2..=4),
        seed in 0u64..1000,
    ) {
        // All inputs request only output 0 at level 1 with distinct
        // priorities: COA must grant the maximum.
        let mut uniq = prios.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assume!(uniq.len() == prios.len());
        let mut cs = CandidateSet::new(4, 2);
        for (input, &p) in prios.iter().enumerate() {
            cs.push(Candidate { input, vc: input, output: 0, priority: Priority::new(p as f64) });
        }
        let mut sched = ArbiterKind::Coa.instantiate(4);
        let mut rng = SimRng::seed_from_u64(seed);
        let m = sched.schedule(&cs, &mut rng);
        prop_assert_eq!(m.size(), 1);
        let winner = (0..prios.len()).max_by_key(|&i| prios[i]).unwrap();
        prop_assert!(m.grant_for(winner).is_some(), "priority {:?} winner {}", prios, winner);
    }

    #[test]
    fn siabp_priority_monotone_in_delay_and_reservation(
        slots_a in 1u64..2048,
        slots_b in 1u64..2048,
        d1 in 0u64..u64::MAX / 2,
        d2 in 0u64..u64::MAX / 2,
    ) {
        let (lo_d, hi_d) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        // Monotone in delay for fixed reservation:
        prop_assert!(Siabp.priority(slots_a, 1.0, lo_d) <= Siabp.priority(slots_a, 1.0, hi_d));
        // Monotone in reservation for fixed delay:
        let (lo_s, hi_s) = if slots_a <= slots_b { (slots_a, slots_b) } else { (slots_b, slots_a) };
        prop_assert!(Siabp.priority(lo_s, 1.0, d1) <= Siabp.priority(hi_s, 1.0, d1));
    }

    #[test]
    fn iabp_priority_scales_linearly(
        iat in 1.0f64..1e7,
        delay in 0u64..1_000_000_000,
    ) {
        let p1 = Iabp.priority(0, iat, delay).0;
        let p2 = Iabp.priority(0, iat, delay * 2).0;
        prop_assert!((p2 - 2.0 * p1).abs() < 1e-6 * p1.max(1.0));
    }

    #[test]
    fn mwm_exact_is_weight_optimal_at_six_ports(
        cs in candidate_set_strategy(6, 3),
        seed in 0u64..1000,
    ) {
        // The Hungarian kernel's matching weight must equal the maximum
        // over ALL matchings, enumerated brute-force.  (The weight
        // function orders matchings by size first, so this also proves
        // MWM-exact always finds a maximum matching.)
        let mut sched = ArbiterKind::MwmExact.instantiate(6);
        let mut rng = SimRng::seed_from_u64(seed);
        let m = sched.schedule(&cs, &mut rng);
        let got = matching_weight(&cs, &m);
        let best = brute_force_max_weight(&cs);
        prop_assert!(
            (got - best).abs() <= 1e-9 * best.max(1.0),
            "kernel weight {} vs enumerated optimum {}", got, best
        );
    }

    #[test]
    fn mwm_exact_is_weight_optimal_at_four_ports(
        cs in candidate_set_strategy(4, 4),
        seed in 0u64..1000,
    ) {
        let mut sched = ArbiterKind::MwmExact.instantiate(4);
        let mut rng = SimRng::seed_from_u64(seed);
        let m = sched.schedule(&cs, &mut rng);
        let got = matching_weight(&cs, &m);
        let best = brute_force_max_weight(&cs);
        prop_assert!(
            (got - best).abs() <= 1e-9 * best.max(1.0),
            "kernel weight {} vs enumerated optimum {}", got, best
        );
    }

    #[test]
    fn mwm_greedy_keeps_the_half_approximation_bound(
        cs in candidate_set_strategy(6, 3),
        seed in 0u64..1000,
    ) {
        let mut sched = ArbiterKind::MwmApprox.instantiate(6);
        let mut rng = SimRng::seed_from_u64(seed);
        let m = sched.schedule(&cs, &mut rng);
        let got = matching_weight(&cs, &m);
        let best = brute_force_max_weight(&cs);
        prop_assert!(
            2.0 * got >= best - 1e-9,
            "greedy weight {} below half of optimum {}", got, best
        );
    }

    #[test]
    fn matching_size_bounded_by_distinct_outputs(
        cs in candidate_set_strategy(4, 4),
        seed in 0u64..100,
    ) {
        let mut outputs: Vec<usize> = cs.iter().map(|c| c.output).collect();
        outputs.sort_unstable();
        outputs.dedup();
        let mut inputs: Vec<usize> = cs.iter().map(|c| c.input).collect();
        inputs.sort_unstable();
        inputs.dedup();
        let bound = outputs.len().min(inputs.len());
        for kind in ArbiterKind::all() {
            let mut sched = kind.instantiate(4);
            let mut rng = SimRng::seed_from_u64(seed);
            let m = sched.schedule(&cs, &mut rng);
            prop_assert!(m.size() <= bound, "{}: {} > {}", kind.label(), m.size(), bound);
        }
    }
}
