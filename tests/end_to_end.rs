//! End-to-end integration tests: full pipeline (sources → NIC → router →
//! sinks) across the traffic, arbiter, router, and core crates.

use mmr_core::arbiter::scheduler::ArbiterKind;
use mmr_core::config::{InjectionKind, RunLength, SimConfig, WorkloadSpec};
use mmr_core::experiment::{build_router, build_workload, run_experiment};
use mmr_core::scenarios::vbr_cycle_budget;
use mmr_core::sim::engine::{Runner, StopCondition};
use mmr_core::traffic::connection::TrafficClass;

#[test]
fn cbr_pipeline_delivers_all_classes() {
    let cfg = SimConfig {
        workload: WorkloadSpec::cbr(0.6),
        warmup_cycles: 2_000,
        run: RunLength::Cycles(40_000),
        ..Default::default()
    };
    let r = run_experiment(&cfg);
    for class in [
        TrafficClass::CbrLow,
        TrafficClass::CbrMedium,
        TrafficClass::CbrHigh,
    ] {
        let c = r
            .summary
            .metrics
            .class(class)
            .unwrap_or_else(|| panic!("{class:?} missing"));
        assert!(c.delivered > 0, "{class:?} delivered nothing");
    }
    assert!(
        r.summary.throughput_ratio() > 0.98,
        "60% load must not saturate"
    );
}

#[test]
fn vbr_pipeline_conserves_flits() {
    // Every generated flit is eventually delivered — nothing is lost or
    // duplicated anywhere in the NIC / VC / crossbar pipeline.
    let cfg = SimConfig {
        workload: WorkloadSpec::Vbr {
            target_load: 0.5,
            gops: 1,
            injection: InjectionKind::SmoothRate,
            enforce_peak: false,
        },
        warmup_cycles: 0,
        run: RunLength::UntilDrained {
            max_cycles: vbr_cycle_budget(1),
        },
        ..Default::default()
    };
    let r = run_experiment(&cfg);
    assert!(r.drained, "0.5 load VBR must drain fully");
    let vbr = r.summary.metrics.class(TrafficClass::Vbr).unwrap();
    assert_eq!(vbr.generated, vbr.delivered, "flit conservation violated");
    assert_eq!(r.summary.backlog_flits, 0);
}

#[test]
fn vbr_delivers_every_frame_exactly_once() {
    let cfg = SimConfig {
        workload: WorkloadSpec::Vbr {
            target_load: 0.4,
            gops: 2,
            injection: InjectionKind::BackToBack,
            enforce_peak: false,
        },
        warmup_cycles: 0,
        run: RunLength::UntilDrained {
            max_cycles: vbr_cycle_budget(2),
        },
        ..Default::default()
    };
    let workload = build_workload(&cfg);
    let expected_frames: u64 =
        workload.connections.len() as u64 * 2 * mmr_core::traffic::mpeg::GOP_PATTERN.len() as u64;
    let mut router = build_router(&cfg, workload);
    let out =
        Runner::new(0, StopCondition::ModelDoneOrCycles(vbr_cycle_budget(2))).run(&mut router);
    assert!(out.model_finished, "router must drain");
    assert_eq!(router.summary().metrics.frames_delivered, expected_frames);
}

#[test]
fn crossbar_never_exceeds_port_capacity() {
    // Delivered flits per output can never exceed one per cycle.
    let cfg = SimConfig {
        workload: WorkloadSpec::cbr(0.9),
        warmup_cycles: 0,
        run: RunLength::Cycles(10_000),
        ..Default::default()
    };
    let r = run_experiment(&cfg);
    for (port, &delivered) in r.summary.delivered_per_output.iter().enumerate() {
        assert!(
            delivered <= 10_000,
            "output {port} delivered {delivered} flits in 10k cycles"
        );
    }
    // And the total can't exceed ports x cycles.
    assert!(r.summary.delivered_flits <= 4 * 10_000);
}

#[test]
fn utilization_approximates_carried_load_below_saturation() {
    for load in [0.3, 0.5, 0.7] {
        let cfg = SimConfig {
            workload: WorkloadSpec::cbr(load),
            warmup_cycles: 3_000,
            run: RunLength::Cycles(30_000),
            ..Default::default()
        };
        let r = run_experiment(&cfg);
        assert!(
            (r.summary.crossbar_utilization - r.achieved_load).abs() < 0.06,
            "load {load}: utilization {} vs achieved {}",
            r.summary.crossbar_utilization,
            r.achieved_load
        );
    }
}

#[test]
fn all_arbiters_run_the_full_pipeline() {
    for kind in ArbiterKind::all() {
        let cfg = SimConfig {
            workload: WorkloadSpec::cbr(0.5),
            arbiter: kind,
            warmup_cycles: 500,
            run: RunLength::Cycles(8_000),
            ..Default::default()
        };
        let r = run_experiment(&cfg);
        assert!(
            r.summary.delivered_flits > 0,
            "{} delivered nothing",
            kind.label()
        );
        assert!(
            r.summary.throughput_ratio() > 0.9,
            "{} throughput {} at 50% load",
            kind.label(),
            r.summary.throughput_ratio()
        );
    }
}

#[test]
fn line_network_end_to_end() {
    use mmr_core::arbiter::priority::PriorityKind;
    use mmr_core::router::config::RouterConfig;
    use mmr_core::router::network::LineNetwork;
    use mmr_core::sim::rng::SimRng;
    use mmr_core::traffic::admission::RoundConfig;
    use mmr_core::traffic::workload::CbrMixBuilder;

    let cfg = RouterConfig::default();
    let mut rng = SimRng::seed_from_u64(11);
    let w = CbrMixBuilder::new(cfg.ports, cfg.time, RoundConfig::default())
        .target_load(0.4)
        .build(&mut rng);
    let conns = w.len();
    let mut net = LineNetwork::new(cfg, w, 3, ArbiterKind::Coa, PriorityKind::Siabp, 11);
    assert_eq!(net.stage_count(), 3);
    for conn in 0..conns {
        assert_eq!(net.path_of(conn).len(), 3);
    }
    Runner::new(1_000, StopCondition::Cycles(12_000)).run(&mut net);
    let s = net.summary();
    assert!(s.delivered_flits > 0);
    assert!((s.delivered_flits as f64 / s.generated_flits as f64) > 0.95);
}

#[test]
fn mix_ramp_admits_exactly_at_each_breakpoint() {
    // The declared ramp schedule is a contract: at every breakpoint the
    // number of active connections equals the schedule's own accounting
    // (round(fraction * population)), not merely "roughly more".
    use mmr_core::config::{MixGroup, RampScheduleConfig, RampStepConfig};

    let steps = [(0u64, 0.25f64), (4_000, 0.5), (8_000, 1.0)];
    let ramp = RampScheduleConfig {
        steps: steps
            .iter()
            .map(|&(at_cycle, fraction)| RampStepConfig { at_cycle, fraction })
            .collect(),
    };
    let cfg = SimConfig {
        workload: WorkloadSpec::Mix {
            target_load: 0.5,
            groups: vec![
                MixGroup {
                    class: TrafficClass::CbrLow,
                    rate_bps: 64_000.0,
                    weight: 3.0,
                },
                MixGroup {
                    class: TrafficClass::CbrHigh,
                    rate_bps: 6_000_000.0,
                    weight: 1.0,
                },
            ],
            ramp: Some(ramp.clone()),
            churn: None,
        },
        warmup_cycles: 10_000,
        run: RunLength::Cycles(20_000),
        ..Default::default()
    };
    let w = build_workload(&cfg);
    let n = w.len();
    assert!(n > 8, "population too small to exercise the ramp ({n})");
    for &(at_cycle, fraction) in &steps {
        let expected = ramp.active_at(n, at_cycle);
        assert_eq!(
            w.active_at(at_cycle),
            expected,
            "breakpoint {at_cycle}: active != schedule"
        );
        assert_eq!(
            expected,
            ((fraction * n as f64).round() as usize).min(n),
            "schedule accounting drifted from round(fraction * n)"
        );
        // Just before a later breakpoint the previous wave still holds.
        if at_cycle > 0 {
            assert!(
                w.active_at(at_cycle - 1) <= expected,
                "activation happened before its breakpoint"
            );
        }
    }
    assert_eq!(w.active_at(u64::MAX), n, "ramp must end fully active");

    // The ramped workload still runs end to end.
    let r = run_experiment(&cfg);
    assert!(r.summary.delivered_flits > 0);
    assert!(r.summary.throughput_ratio() > 0.9);
}

#[test]
fn mix_churn_conserves_flits() {
    // Departures and arrivals move flit generation around in time but
    // never create or destroy flits: generated = delivered + backlog +
    // lost, with warmup 0 so measurement covers the whole run.
    use mmr_core::config::{ChurnConfig, MixGroup};

    let cfg = SimConfig {
        workload: WorkloadSpec::Mix {
            target_load: 0.4,
            groups: vec![
                MixGroup {
                    class: TrafficClass::CbrLow,
                    rate_bps: 64_000.0,
                    weight: 2.0,
                },
                MixGroup {
                    class: TrafficClass::CbrMedium,
                    rate_bps: 1_540_000.0,
                    weight: 2.0,
                },
                MixGroup {
                    class: TrafficClass::CbrHigh,
                    rate_bps: 6_000_000.0,
                    weight: 1.0,
                },
            ],
            ramp: None,
            churn: Some(ChurnConfig {
                start: 3_000,
                end: 9_000,
                departures: 0.25,
                arrivals: 0.2,
            }),
        },
        warmup_cycles: 0,
        run: RunLength::Cycles(30_000),
        ..Default::default()
    };
    let r = run_experiment(&cfg);
    let s = &r.summary;
    let lost = s.faults.corrupted_flits + s.faults.dropped_flits;
    assert_eq!(
        s.generated_flits,
        s.delivered_flits + s.backlog_flits as u64 + lost,
        "churn broke flit conservation"
    );
    assert!(s.delivered_flits > 0);

    // The population shrinks by exactly the departed count after the
    // window closes, and late arrivals start inside it.
    let w = build_workload(&cfg);
    let n = w.len();
    let active_before = w.active_at(0);
    let active_after = w.active_at(29_999);
    assert!(active_before > active_after, "no departures took effect");
    assert!(n > active_before, "no churn arrivals were admitted");
}
