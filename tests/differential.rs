//! Differential tests: optimized bitmask kernels vs golden references.
//!
//! Every arbiter in `mmr_arbiter` has an unoptimized reference
//! transcription in `mmr_arbiter::reference`.  These tests drive both
//! implementations with identical candidate sets and *shared-seed RNG
//! streams* across many cycles and require bit-identical matchings.
//! Because the streams are only re-seeded per test case — not per cycle —
//! any divergence in RNG consumption (an extra draw, a skipped draw, a
//! different visit order) cascades into a mismatch on a later cycle, so
//! equality here proves the kernels preserve the exact draw sequence, not
//! just the final grants.

use mmr_core::arbiter::candidate::{Candidate, CandidateSet, Priority};
use mmr_core::arbiter::scheduler::ArbiterKind;
use mmr_core::sim::rng::SimRng;
use proptest::prelude::*;

/// Fill a candidate set with a random workload.  `tie_prone` draws
/// priorities from a tiny range so equal-priority tie-break paths (the
/// RNG-hungry ones) are exercised constantly.
fn fill_random(cs: &mut CandidateSet, rng: &mut SimRng, tie_prone: bool) {
    let ports = cs.ports();
    let levels = cs.levels();
    cs.clear();
    let mut cands: Vec<Candidate> = Vec::with_capacity(levels);
    for input in 0..ports {
        cands.clear();
        let count = rng.index(levels + 1);
        for vc in 0..count {
            let priority = if tie_prone {
                Priority::new(rng.index(4) as f64)
            } else {
                Priority::new(rng.uniform() * 1e6)
            };
            cands.push(Candidate {
                input,
                vc,
                output: rng.index(ports),
                priority,
            });
        }
        cands.sort_by_key(|c| core::cmp::Reverse(c.priority));
        for (vc, c) in cands.iter_mut().enumerate() {
            c.vc = vc; // keep vc = level so grants are comparable
        }
        cs.set_input(input, &cands);
    }
}

/// Run `kind` and its reference side by side for `cycles` cycles per
/// seed, asserting identical matchings and identical RNG consumption.
fn assert_matches_reference(kind: ArbiterKind, ports: usize, seeds: u64, cycles: usize) {
    let levels = 4;
    for seed in 0..seeds {
        let mut fast = kind.instantiate(ports);
        let mut golden = kind.instantiate_reference(ports);
        // One stream per side, seeded identically and *never* re-seeded:
        // a consumption mismatch in cycle t breaks cycle t+1.
        let mut rng_fast = SimRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9) ^ 0xABCD);
        let mut rng_gold = SimRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9) ^ 0xABCD);
        let mut workload_rng = SimRng::seed_from_u64(seed);
        let mut cs = CandidateSet::new(ports, levels);
        for cycle in 0..cycles {
            let tie_prone = cycle % 2 == 0;
            fill_random(&mut cs, &mut workload_rng, tie_prone);
            let m_fast = fast.schedule(&cs, &mut rng_fast);
            let m_gold = golden.schedule(&cs, &mut rng_gold);
            assert_eq!(
                m_fast,
                m_gold,
                "{} diverged from reference: ports={ports} seed={seed} cycle={cycle}",
                kind.label()
            );
            // Both streams must sit at the same position.
            assert_eq!(
                rng_fast.next_u64_raw(),
                rng_gold.next_u64_raw(),
                "{} consumed a different number of RNG draws: ports={ports} seed={seed} \
                 cycle={cycle}",
                kind.label()
            );
        }
    }
}

/// The full matrix for one arbiter kind: 100+ seeds at the small and
/// medium port counts the paper uses, smaller samples at the single-word
/// width limit and in the multi-word regime (128 ports = two port-set
/// words, 256 = four; the reference is O(ports² · levels) per grant
/// there, so a few seeds is all the budget allows).
fn differential_matrix(kind: ArbiterKind) {
    assert_matches_reference(kind, 4, 128, 6);
    assert_matches_reference(kind, 8, 128, 6);
    assert_matches_reference(kind, 16, 104, 4);
    assert_matches_reference(kind, 64, 12, 3);
    assert_matches_reference(kind, 128, 4, 2);
    assert_matches_reference(kind, 256, 2, 2);
}

#[test]
fn coa_matches_reference() {
    differential_matrix(ArbiterKind::Coa);
}

#[test]
fn wfa_matches_reference() {
    differential_matrix(ArbiterKind::Wfa);
}

#[test]
fn wfa_fixed_matches_reference() {
    differential_matrix(ArbiterKind::WfaFixed);
}

#[test]
fn wfa_first_level_matches_reference() {
    differential_matrix(ArbiterKind::WfaFirstLevel);
}

#[test]
fn islip_matches_reference() {
    differential_matrix(ArbiterKind::Islip { iterations: 2 });
    assert_matches_reference(ArbiterKind::Islip { iterations: 4 }, 8, 64, 4);
}

#[test]
fn pim_matches_reference() {
    differential_matrix(ArbiterKind::Pim { iterations: 2 });
    assert_matches_reference(ArbiterKind::Pim { iterations: 4 }, 8, 64, 4);
}

#[test]
fn greedy_matches_reference() {
    differential_matrix(ArbiterKind::GreedyPriority);
}

#[test]
fn random_matches_reference() {
    differential_matrix(ArbiterKind::Random);
}

#[test]
fn mwm_exact_matches_reference() {
    // ≤64 ports runs the Hungarian solver on both sides (bit-identical
    // f64 sequences); 128/256 exercise the documented greedy fallback.
    differential_matrix(ArbiterKind::MwmExact);
}

#[test]
fn mwm_approx_matches_reference() {
    differential_matrix(ArbiterKind::MwmApprox);
}

#[test]
fn frame_fair_matches_reference() {
    differential_matrix(ArbiterKind::FrameFair { frame: 64 });
    // A short frame rolls the quota counters over mid-matrix.
    assert_matches_reference(ArbiterKind::FrameFair { frame: 3 }, 8, 64, 6);
}

#[test]
fn cq_matches_reference() {
    differential_matrix(ArbiterKind::CrosspointQueued { cap: 16 });
    // A depth cap of 1 keeps every queue saturated, forcing the
    // all-ties RNG path each cycle.
    assert_matches_reference(ArbiterKind::CrosspointQueued { cap: 1 }, 8, 64, 6);
}

#[test]
fn stateful_arbiters_stay_locked_over_long_runs() {
    // WFA's diagonal, iSLIP's pointers, frame-fair's quota counters and
    // CQ's queue pressures all evolve over time; run a long
    // shared-stream session so state divergence would compound.
    for kind in [
        ArbiterKind::Wfa,
        ArbiterKind::Islip { iterations: 2 },
        ArbiterKind::FrameFair { frame: 16 },
        ArbiterKind::CrosspointQueued { cap: 8 },
    ] {
        assert_matches_reference(kind, 8, 8, 64);
    }
}

/// Proptest strategy mirror of `arbiter_properties.rs`: arbitrary
/// candidate sets, all kinds, optimized == reference.
fn candidate_set_strategy(ports: usize, levels: usize) -> impl Strategy<Value = CandidateSet> {
    let per_input = proptest::collection::vec((0..ports, 0u64..8), 0..=levels);
    proptest::collection::vec(per_input, ports).prop_map(move |inputs| {
        let mut cs = CandidateSet::new(ports, levels);
        for (input, cands) in inputs.into_iter().enumerate() {
            let mut cands: Vec<Candidate> = cands
                .into_iter()
                .enumerate()
                .map(|(vc, (output, prio))| Candidate {
                    input,
                    vc,
                    output,
                    priority: Priority::new(prio as f64),
                })
                .collect();
            cands.sort_by_key(|c| core::cmp::Reverse(c.priority));
            cs.set_input(input, &cands);
        }
        cs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_kind_matches_reference_on_arbitrary_input(
        cs in candidate_set_strategy(4, 4),
        seed in 0u64..10_000,
    ) {
        for kind in ArbiterKind::all() {
            let mut fast = kind.instantiate(4);
            let mut golden = kind.instantiate_reference(4);
            let mut rng_fast = SimRng::seed_from_u64(seed);
            let mut rng_gold = SimRng::seed_from_u64(seed);
            let m_fast = fast.schedule(&cs, &mut rng_fast);
            let m_gold = golden.schedule(&cs, &mut rng_gold);
            prop_assert_eq!(&m_fast, &m_gold, "{} diverged (seed {})", kind.label(), seed);
            prop_assert_eq!(rng_fast.next_u64_raw(), rng_gold.next_u64_raw());
        }
    }
}

proptest! {
    // Port counts straddling the 64-bit word boundary: 63 (bit 62 is the
    // top port), 64 (exactly one full word), 65 (first port in the second
    // word).  Off-by-one errors in multi-word masking — a stray bit 63,
    // a missed carry into word 1, a `full()` mask one bit short — show up
    // exactly here and nowhere in the power-of-two matrix above.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_kind_matches_reference_at_word_boundary_widths(
        width_index in 0usize..3,
        inputs in proptest::collection::vec(
            proptest::collection::vec((0usize..65, 0u64..8), 0..=2),
            65,
        ),
        seed in 0u64..10_000,
    ) {
        let ports = [63usize, 64, 65][width_index];
        let mut cs = CandidateSet::new(ports, 2);
        for (input, cands) in inputs.iter().take(ports).enumerate() {
            let mut cands: Vec<Candidate> = cands
                .iter()
                .enumerate()
                .map(|(vc, &(output, prio))| Candidate {
                    input,
                    vc,
                    output: output % ports,
                    priority: Priority::new(prio as f64),
                })
                .collect();
            cands.sort_by_key(|c| core::cmp::Reverse(c.priority));
            cs.set_input(input, &cands);
        }
        for kind in ArbiterKind::all() {
            let mut fast = kind.instantiate(ports);
            let mut golden = kind.instantiate_reference(ports);
            let mut rng_fast = SimRng::seed_from_u64(seed);
            let mut rng_gold = SimRng::seed_from_u64(seed);
            let m_fast = fast.schedule(&cs, &mut rng_fast);
            let m_gold = golden.schedule(&cs, &mut rng_gold);
            prop_assert_eq!(
                &m_fast,
                &m_gold,
                "{} diverged (ports {}, seed {})",
                kind.label(),
                ports,
                seed
            );
            prop_assert_eq!(rng_fast.next_u64_raw(), rng_gold.next_u64_raw());
        }
    }
}
