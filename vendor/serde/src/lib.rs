//! Offline drop-in subset of `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal replacement exposing the subset this project uses:
//! `#[derive(Serialize, Deserialize)]` on plain (non-generic) structs and
//! enums without field attributes, backed by a JSON-like [`Value`] data
//! model.  `serde_json` (also vendored) renders and parses that model.
//!
//! The derives produce serde's externally-tagged conventions so configs
//! written by the real serde remain readable: unit enum variants become
//! strings, data-carrying variants become single-key objects, newtype
//! structs collapse to their payload.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-like dynamic value: the intermediate data model all
/// serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also carries non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point (finite).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object fields if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// New error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the dynamic data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from the dynamic data model.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Reconstruct from an optional field value.  The default errors on a
    /// missing field; `Option<T>` overrides it to yield `None`, matching
    /// serde's tolerance for absent optional fields.
    fn from_maybe(v: Option<&Value>, field: &str) -> Result<Self, Error> {
        match v {
            Some(v) => Self::from_value(v).map_err(|e| Error(format!("field `{field}`: {e}"))),
            None => Err(Error(format!("missing field `{field}`"))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => u64::try_from(n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| Error(format!("{n} out of range for {}", stringify!($t)))),
                    ref other => Err(Error(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(n) => i64::try_from(n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    ref other => Err(Error(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // Values beyond u64 fall back to a decimal string; JSON numbers
        // that large would not round-trip through the u64-based parser.
        match u64::try_from(*self) {
            Ok(n) => Value::U64(n),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::U64(n) => Ok(*n as u128),
            Value::I64(n) => {
                u128::try_from(*n).map_err(|_| Error(format!("{n} out of range for u128")))
            }
            Value::Str(s) => s
                .parse::<u128>()
                .map_err(|_| Error(format!("`{s}` is not a u128"))),
            other => Err(Error(format!("expected unsigned integer, got {other:?}"))),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(n) => n.to_value(),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::U64(n) => Ok(*n as i128),
            Value::I64(n) => Ok(*n as i128),
            Value::Str(s) => s
                .parse::<i128>()
                .map_err(|_| Error(format!("`{s}` is not an i128"))),
            other => Err(Error(format!("expected integer, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            // JSON has no non-finite literals; serde_json writes null.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            Value::Null => Ok(f64::NAN),
            ref other => Err(Error(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // Static string fields (e.g. table names) deserialize by leaking;
        // acceptable for the handful of small config strings involved.
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_maybe(v: Option<&Value>, field: &str) -> Result<Self, Error> {
        match v {
            None => Ok(None),
            Some(v) => Self::from_value(v).map_err(|e| Error(format!("field `{field}`: {e}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const N: usize = 0 $(+ { let _ = stringify!($t); 1 })+;
                match v {
                    Value::Array(xs) if xs.len() == N => {
                        Ok(($($t::from_value(&xs[$idx])?,)+))
                    }
                    other => Err(Error(format!(
                        "expected {N}-tuple array, got {other:?}"
                    ))),
                }
            }
        }
    )+};
}
impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn option_and_vec() {
        let v: Option<u64> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_maybe(None, "f").unwrap(), None);
        assert!(u64::from_maybe(None, "f").is_err());
        let xs = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn tuples_roundtrip() {
        let t = (1u64, 2.5f64);
        assert_eq!(<(u64, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn object_get() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a"), Some(&Value::U64(1)));
        assert_eq!(v.get("b"), None);
    }
}
