//! Offline drop-in subset of `serde_json`: renders and parses the
//! vendored [`serde::Value`] data model.
//!
//! Floats are printed with Rust's shortest round-trip formatting (`{:?}`),
//! so `to_string` → `from_str` round-trips every finite `f64` exactly —
//! required for the simulator's deterministic config round-trip tests.

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

/// Parse JSON text into a [`Value`] without binding it to a type.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, x: f64) {
    // `{:?}` is the shortest representation that round-trips; it always
    // includes a `.0` or exponent for integral values, keeping the token
    // recognizably a float.
    let _ = write!(out, "{x:?}");
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    let (nl, pad, padc, sep) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (level + 1)),
            " ".repeat(w * level),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(out, x, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&padc);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(out, k);
                out.push_str(sep);
                write_value(out, x, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&padc);
            out.push('}');
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::new(format!("expected `{lit}` at byte {}", *pos)))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, "\"")?;
    let mut s = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(Error::new("unterminated string"));
        };
        *pos += 1;
        match b {
            b'"' => return Ok(s),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(Error::new("unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'/' => s.push('/'),
                    b'n' => s.push('\n'),
                    b'r' => s.push('\r'),
                    b't' => s.push('\t'),
                    b'b' => s.push('\u{8}'),
                    b'f' => s.push('\u{c}'),
                    b'u' => {
                        let hi = parse_hex4(bytes, pos)?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            expect(bytes, pos, "\\u")?;
                            let lo = parse_hex4(bytes, pos)?;
                            0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                        } else {
                            hi
                        };
                        s.push(char::from_u32(cp).ok_or_else(|| Error::new("invalid \\u escape"))?);
                    }
                    other => return Err(Error::new(format!("bad escape `\\{}`", other as char))),
                }
            }
            _ => {
                // Re-sync to char boundary for multi-byte UTF-8.
                let start = *pos - 1;
                let len = utf8_len(b);
                let end = start + len;
                if end > bytes.len() {
                    return Err(Error::new("truncated UTF-8"));
                }
                s.push_str(
                    std::str::from_utf8(&bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8"))?,
                );
                *pos = end;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, Error> {
    let end = *pos + 4;
    if end > bytes.len() {
        return Err(Error::new("truncated \\u escape"));
    }
    let s = std::str::from_utf8(&bytes[*pos..end]).map_err(|_| Error::new("bad hex"))?;
    let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad hex"))?;
    *pos = end;
    Ok(v)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    let mut is_float = false;
    if matches!(bytes.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    if !is_float {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(n) = stripped.parse::<u64>() {
                if n <= i64::MAX as u64 + 1 {
                    return Ok(Value::I64((n as i64).wrapping_neg()));
                }
            }
        } else if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if matches!(bytes.get(*pos), Some(b']')) {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected , or ] at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if matches!(bytes.get(*pos), Some(b'}')) {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_at(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error::new(format!("expected , or }} at byte {}", *pos))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = parse_value(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 826e-9, f64::MAX] {
            let v = Value::F64(x);
            let text = to_string(&v).unwrap();
            match parse_value(&text).unwrap() {
                Value::F64(y) => assert_eq!(x, y, "text {text}"),
                other => panic!("reparsed as {other:?}"),
            }
        }
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny"}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
        assert_eq!(v.get("c"), Some(&Value::Str("x\ny".into())));
    }

    #[test]
    fn pretty_is_reparseable() {
        let text = r#"{"a":[1,2],"b":{"c":true}}"#;
        let v = parse_value(text).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value(r#""é😀""#).unwrap();
        assert_eq!(v, Value::Str("é😀".into()));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
    }
}
