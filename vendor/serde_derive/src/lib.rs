//! Offline `#[derive(Serialize, Deserialize)]` for the vendored serde
//! subset.
//!
//! Written against `proc_macro` alone (no syn/quote — the build
//! environment is offline), so the item parser is deliberately small.  It
//! supports exactly the shapes this workspace uses:
//!
//! * non-generic structs with named fields, tuple structs, unit structs;
//! * non-generic enums with unit, tuple, and struct variants;
//! * no `#[serde(...)]` field/container attributes.
//!
//! Anything else produces a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

enum Fields {
    Named(Vec<String>),
    /// Tuple fields (arity).
    Tuple(usize),
    Unit,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip `#[...]` attribute groups at the cursor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility modifier (`pub`, `pub(...)`) at the cursor.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parse the fields of a braced group: `name: Type, ...`.  Returns the
/// field names.  Types are skipped with angle-bracket depth tracking so
/// generic arguments containing commas do not split fields.
fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, got `{other}`")),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Skip the type: consume until a comma at angle depth 0.
        let mut depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        names.push(name);
    }
    Ok(names)
}

/// Count the fields of a parenthesized tuple group.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1usize;
    for tt in &tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "offline serde derive does not support generics (on `{name}`)"
        ));
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g)?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Struct {
                    name,
                    fields: Fields::Tuple(count_tuple_fields(g)),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct {
                name,
                fields: Fields::Unit,
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            let vt: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0;
            while j < vt.len() {
                j = skip_attrs(&vt, j);
                let vname = match vt.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    Some(other) => return Err(format!("expected variant, got `{other}`")),
                    None => break,
                };
                j += 1;
                let fields = match vt.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        j += 1;
                        Fields::Named(parse_named_fields(g)?)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        j += 1;
                        Fields::Tuple(count_tuple_fields(g))
                    }
                    _ => Fields::Unit,
                };
                if matches!(vt.get(j), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    return Err(format!(
                        "offline serde derive does not support discriminants (variant `{vname}`)"
                    ));
                }
                if matches!(vt.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    j += 1;
                }
                variants.push((vname, fields));
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Emit the expression serializing `fields` accessed through `access`
/// (e.g. `&self.x` for structs, a bound name for enum variants).
fn ser_fields_expr(fields: &Fields, bind: impl Fn(usize, &str) -> String) -> String {
    match fields {
        Fields::Named(names) => {
            let mut s = String::from("{ let mut __f: Vec<(String, serde::Value)> = Vec::new(); ");
            for (idx, n) in names.iter().enumerate() {
                s.push_str(&format!(
                    "__f.push(({n:?}.to_string(), serde::Serialize::to_value({})));",
                    bind(idx, n)
                ));
            }
            s.push_str(" serde::Value::Object(__f) }");
            s
        }
        Fields::Tuple(1) => format!("serde::Serialize::to_value({})", bind(0, "")),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value({})", bind(i, "")))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Unit => "serde::Value::Null".to_string(),
    }
}

/// Emit the expression deserializing `fields` of `ctor` from `__v`
/// (a `&serde::Value`).
fn de_fields_expr(ctor: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let mut s = format!(
                "{{ let __obj = __v; let _ = __obj.as_object().ok_or_else(|| \
                 serde::Error::new(format!(\"expected object for {ctor}, got {{__obj:?}}\")))?; \
                 Ok({ctor} {{ "
            );
            for n in names {
                s.push_str(&format!(
                    "{n}: serde::Deserialize::from_maybe(__obj.get({n:?}), {n:?})?, "
                ));
            }
            s.push_str("}) }");
            s
        }
        Fields::Tuple(1) => format!("Ok({ctor}(serde::Deserialize::from_value(__v)?))"),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__xs[{i}])?"))
                .collect();
            format!(
                "match __v {{ serde::Value::Array(__xs) if __xs.len() == {n} => \
                 Ok({ctor}({})), __other => Err(serde::Error::new(format!(\
                 \"expected {n}-element array for {ctor}, got {{__other:?}}\"))) }}",
                items.join(", ")
            )
        }
        Fields::Unit => format!("Ok({ctor})"),
    }
}

/// `#[derive(Serialize)]` for the vendored serde subset.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let out = match &item {
        Item::Struct { name, fields } => {
            let body = ser_fields_expr(fields, |i, n| match fields {
                Fields::Named(_) => format!("&self.{n}"),
                _ => format!("&self.{i}"),
            });
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ {body} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::Value::Str({vname:?}.to_string()),\n"
                    )),
                    Fields::Named(names) => {
                        let pat = names.join(", ");
                        let body = ser_fields_expr(fields, |_, n| n.to_string());
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {pat} }} => serde::Value::Object(vec![\
                             ({vname:?}.to_string(), {body})]),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__b{i}")).collect();
                        let pat = binds.join(", ");
                        let body = ser_fields_expr(fields, |i, _| format!("__b{i}"));
                        arms.push_str(&format!(
                            "{name}::{vname}({pat}) => serde::Value::Object(vec![\
                             ({vname:?}.to_string(), {body})]),\n"
                        ));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ match self {{ {arms} }} }}\n}}"
            )
        }
    };
    out.parse().unwrap()
}

/// `#[derive(Deserialize)]` for the vendored serde subset.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let out = match &item {
        Item::Struct { name, fields } => {
            let body = de_fields_expr(name, fields);
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{ {body} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            // Externally tagged: "Variant" or {"Variant": payload}.
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("{vname:?} => Ok({name}::{vname}),\n"));
                        tagged_arms.push_str(&format!("{vname:?} => Ok({name}::{vname}),\n"));
                    }
                    _ => {
                        let body = de_fields_expr(&format!("{name}::{vname}"), fields);
                        tagged_arms
                            .push_str(&format!("{vname:?} => {{ let __v = __payload; {body} }}\n"));
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                   match __v {{\n\
                     serde::Value::Str(__s) => match __s.as_str() {{\n\
                       {unit_arms}\n\
                       __other => Err(serde::Error::new(format!(\
                         \"unknown {name} variant {{__other:?}}\"))),\n\
                     }},\n\
                     serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                       let (__tag, __payload) = &__fields[0];\n\
                       match __tag.as_str() {{\n\
                         {tagged_arms}\n\
                         __other => Err(serde::Error::new(format!(\
                           \"unknown {name} variant {{__other:?}}\"))),\n\
                       }}\n\
                     }}\n\
                     __other => Err(serde::Error::new(format!(\
                       \"expected {name} variant, got {{__other:?}}\"))),\n\
                   }}\n\
                 }}\n}}"
            )
        }
    };
    out.parse().unwrap()
}
