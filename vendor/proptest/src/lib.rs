//! Offline drop-in subset of `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing harness covering the API this
//! project uses: range strategies over numbers, tuples, `collection::vec`,
//! `prop_map`, and the `proptest!` / `prop_assert*` / `prop_assume!`
//! macros with `ProptestConfig::with_cases`.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its seed index but is not minimized), and generation is deterministic
//! per test name so failures reproduce across runs.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of a fixed type.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values with a function.
        fn prop_map<U, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, map }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.map)(self.source.generate(rng))
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let x = self.start + rng.unit_f64() * (self.end - self.start);
            // Guard against rounding up to the excluded endpoint.
            if x >= self.end {
                self.start
            } else {
                x
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64..self.end as f64).generate(rng) as f32
        }
    }

    /// Strategy producing one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Build a [`VecStrategy`] with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Parse an `MMR_PROPTEST_CASES` value: a case-count **multiplier**
    /// applied on top of each test's configured `cases` (so a suite with
    /// mixed per-test configs scales uniformly).  Missing, empty, zero,
    /// or unparsable values mean 1× (the configured counts as written).
    pub fn parse_case_multiplier(raw: Option<&str>) -> u32 {
        raw.and_then(|s| s.trim().parse::<u32>().ok())
            .filter(|&m| m >= 1)
            .unwrap_or(1)
    }

    /// The case multiplier currently requested via the
    /// `MMR_PROPTEST_CASES` environment variable (1 when unset).  CI's
    /// nightly mode sets `MMR_PROPTEST_CASES=4` to re-run every property
    /// suite at 4× its committed case counts.
    pub fn case_multiplier() -> u32 {
        parse_case_multiplier(std::env::var("MMR_PROPTEST_CASES").ok().as_deref())
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; aborts the whole test.
        Fail(String),
        /// `prop_assume!` filtered the case out; it is not counted.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic splitmix64 generator seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test's name.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in name.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Rejection sampling over the top multiple of n.
            let zone = u64::MAX - (u64::MAX % n);
            loop {
                let x = self.next_u64();
                if x < zone {
                    return x % n;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            // The user writes `#[test]` inside `proptest!` (as with the
            // real crate), so it arrives via `$meta` — don't add another
            // or the harness registers the test twice.
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                // MMR_PROPTEST_CASES scales every suite uniformly (CI
                // nightly runs at 4x the committed counts).
                let __cases = __config
                    .cases
                    .saturating_mul($crate::test_runner::case_multiplier());
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                while __accepted < __cases {
                    __attempts += 1;
                    if __attempts > __cases.saturating_mul(20).saturating_add(1000) {
                        panic!(
                            "proptest {}: too many rejects ({} accepted of {} wanted)",
                            stringify!($name), __accepted, __cases,
                        );
                    }
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "proptest {} failed (case {}): {}",
                                stringify!($name), __accepted, __msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
        );
    }};
}

/// Discard the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn int_ranges_in_bounds(x in 3u64..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn float_ranges_in_bounds(x in -1.5f64..2.5) {
            prop_assert!((-1.5..2.5).contains(&x));
        }

        #[test]
        fn vec_sizes_respected(xs in crate::collection::vec(0u64..10, 2..=5)) {
            prop_assert!(xs.len() >= 2 && xs.len() <= 5);
            prop_assert!(xs.iter().all(|&v| v < 10));
        }

        #[test]
        fn prop_map_applies(x in (0u64..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn assume_rejects(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn case_multiplier_parsing() {
        use crate::test_runner::parse_case_multiplier;
        assert_eq!(parse_case_multiplier(None), 1, "unset means 1x");
        assert_eq!(parse_case_multiplier(Some("")), 1);
        assert_eq!(parse_case_multiplier(Some("0")), 1, "0 is clamped to 1x");
        assert_eq!(parse_case_multiplier(Some("1")), 1);
        assert_eq!(parse_case_multiplier(Some("4")), 4, "nightly mode");
        assert_eq!(parse_case_multiplier(Some(" 16 ")), 16, "whitespace ok");
        assert_eq!(parse_case_multiplier(Some("x")), 1, "garbage means 1x");
        assert_eq!(parse_case_multiplier(Some("-2")), 1);
    }
}
